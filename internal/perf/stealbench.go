package perf

// Steal-side latency benchmark: the bursty ping-pong harness behind the
// BENCH_steal.json regression gate.
//
// The quantity under test is time-to-first-steal: how long a freshly
// published task waits before an idle worker picks it up. The default
// scheduler's idle workers descend a blind backoff ladder (spins, then
// yields, then capped sleeps of up to idleSleepMax), so a task published
// into a quiesced pool waits, on average, half a sleep quantum. The
// StealBatch mode replaces the ladder's sleeping tail with an
// event-driven parking lot: idle workers park on per-worker semaphores
// and work-producing operations wake exactly one of them, making
// post-publication latency a semaphore wake instead of a timer expiry.
//
// The harness alternates quiesce periods — long enough for the idle
// worker to reach the ladder's deepest rung (or to park) — with
// two-sided ping-pong bursts: the root worker forks a pair whose left
// branch spins until the right branch runs, forcing the right branch to
// be stolen; the time from just before the fork to the right branch's
// first instruction is one burst's latency. Mean-over-bursts is the
// repetition's estimate and the best (minimum) repetition is reported,
// mirroring the forkbench methodology (see package comment) — both
// modes are measured back-to-back in the same process, so the gate's
// batch-vs-baseline ratio cancels machine speed.
//
// Allocations are measured over the burst window (warm-up bursts
// excluded) via runtime.MemStats.Mallocs: the steal path — batched claim,
// remnant redistribution into the thief's deque, park/wake round trips —
// must not allocate in steady state.

import (
	"runtime"
	"sync/atomic"
	"time"

	"lcws"
)

// Steal-benchmark dimensions; like the forkbench constants they are part
// of the measurement definition.
const (
	// StealQuiesce is the idle period before each burst: comfortably
	// longer than the backoff ladder's full descent (8 spins + 256
	// yields + ~1.3ms of doubling sleeps), so the idle worker is in a
	// deepest-rung sleep (or parked) when the burst arrives.
	StealQuiesce = 3 * time.Millisecond
	// StealWarmupBursts run before the timed window of each repetition:
	// they warm freelists, the parking-lot timer, and code paths.
	StealWarmupBursts = 8
	// DefaultStealBursts is the number of timed bursts per repetition.
	DefaultStealBursts = 64
	// DefaultStealReps is the number of repetitions the minimum is taken
	// over.
	DefaultStealReps = 3
)

// StealLatencySpeedupGate is the minimum improvement in mean
// time-to-first-steal the batch+parking mode must show over the
// sleep-ladder baseline on the WS ping-pong (the acceptance gate of
// stealbench_test.go).
const StealLatencySpeedupGate = 2.0

// StealModeResult is one policy × idle-mode measurement.
type StealModeResult struct {
	// Policy is the scheduling policy's figure label.
	Policy string `json:"policy"`
	// Mode is "sleep-ladder" (default scheduler) or "batch-park"
	// (Options.StealBatch).
	Mode string `json:"mode"`
	// NsFirstSteal is the best repetition's mean nanoseconds from task
	// publication (just before the fork) to the stolen branch's first
	// instruction.
	NsFirstSteal float64 `json:"ns_first_steal"`
	// AllocsPerBurst is heap allocations per burst over the best
	// repetition's timed window (0 in steady state: the steal, park and
	// wake paths must not allocate).
	AllocsPerBurst float64 `json:"allocs_per_burst"`
	// Bursts and Reps record the methodology parameters.
	Bursts int `json:"bursts"`
	Reps   int `json:"reps"`
	// Scheduler counters accumulated over all repetitions
	// (informational): they prove which mechanism served the bursts.
	Steals          uint64 `json:"steals"`
	StealBatchTasks uint64 `json:"steal_batch_tasks"`
	WakeupsSent     uint64 `json:"wakeups_sent"`
	ParkCount       uint64 `json:"park_count"`
	SignalsSent     uint64 `json:"signals_sent"`
}

// Key returns the result-map key "<policy>/<mode>".
func (r StealModeResult) Key() string { return r.Policy + "/" + r.Mode }

// pingPong is the reusable burst state: one allocation per measurement,
// so the burst loop itself stays allocation-free. lat is written by the
// thief before its done.Store(true) release and read by the owner only
// after observing done, which orders the plain access.
type pingPong struct {
	t0   time.Time
	lat  int64
	done atomic.Bool
}

// quiesceSpin busy-waits for d, yielding each iteration so the idle
// worker being measured gets the CPU it needs to descend its ladder.
func quiesceSpin(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
		runtime.Gosched()
	}
}

// MeasureStealLatency runs the bursty ping-pong on a two-worker
// scheduler with the given policy, with the parking lot (batch=true) or
// the default sleep ladder. Zero bursts/reps select the defaults.
func MeasureStealLatency(pol lcws.Policy, batch bool, bursts, reps int) StealModeResult {
	if bursts <= 0 {
		bursts = DefaultStealBursts
	}
	if reps <= 0 {
		reps = DefaultStealReps
	}
	mode := "sleep-ladder"
	opts := []lcws.Option{lcws.WithWorkers(2), lcws.WithPolicy(pol), lcws.WithSeed(1)}
	if batch {
		mode = "batch-park"
		opts = append(opts, lcws.WithStealBatch(true))
	}
	s := lcws.New(opts...)
	res := StealModeResult{Policy: pol.String(), Mode: mode, Bursts: bursts, Reps: reps}

	var pp pingPong
	// left spins until right has run, forcing right to be stolen; Poll
	// makes it a valid signal-delivery point so the exposure handler can
	// publish right under the signal-based policies, and the yield keeps
	// the thief runnable on oversubscribed hosts.
	left := func(ctx *lcws.Ctx) {
		for !pp.done.Load() {
			ctx.Poll()
			runtime.Gosched()
		}
	}
	right := func(*lcws.Ctx) {
		pp.lat = time.Since(pp.t0).Nanoseconds()
		pp.done.Store(true)
	}
	var sumNs float64
	var mallocs uint64
	root := func(ctx *lcws.Ctx) {
		var ms runtime.MemStats
		sumNs = 0
		for b := 0; b < StealWarmupBursts+bursts; b++ {
			if b == StealWarmupBursts {
				runtime.ReadMemStats(&ms)
				mallocs = ms.Mallocs
			}
			quiesceSpin(StealQuiesce)
			pp.done.Store(false)
			pp.t0 = time.Now()
			lcws.Fork2(ctx, left, right)
			if b >= StealWarmupBursts {
				sumNs += float64(pp.lat)
			}
		}
		runtime.ReadMemStats(&ms)
		mallocs = ms.Mallocs - mallocs
	}
	first := true
	for rep := 0; rep < reps; rep++ {
		s.Run(root)
		mean := sumNs / float64(bursts)
		if first || mean < res.NsFirstSteal {
			first = false
			res.NsFirstSteal = mean
			res.AllocsPerBurst = float64(mallocs) / float64(bursts)
		}
	}
	st := s.Stats()
	res.Steals = st.StealSuccesses
	res.StealBatchTasks = st.StealBatchTasks
	res.WakeupsSent = st.WakeupsSent
	res.ParkCount = st.ParkCount
	res.SignalsSent = st.SignalsSent
	return res
}

// StealReport is the machine-readable document written to
// BENCH_steal.json.
type StealReport struct {
	// Schema identifies the document layout.
	Schema string `json:"schema"`
	// GoVersion and GOMAXPROCS describe the measuring environment.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// QuiesceNs is the idle period before each burst.
	QuiesceNs int64 `json:"quiesce_ns"`
	// SpeedupFirstSteal is the WS sleep-ladder mean latency over the WS
	// batch-park mean latency — the ratio the regression gate compares
	// against StealLatencySpeedupGate.
	SpeedupFirstSteal float64 `json:"speedup_first_steal"`
	// Results holds every policy × mode measurement.
	Results []StealModeResult `json:"results"`
}

// NewStealReport measures the ping-pong for the WS and SignalLCWS
// policies in both idle modes. WS isolates the parking-lot effect (no
// exposure step); SignalLCWS measures the full post-exposure path
// (notify, handler, expose, wake).
func NewStealReport(bursts, reps int) StealReport {
	rep := StealReport{
		Schema:     "lcws-stealbench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		QuiesceNs:  StealQuiesce.Nanoseconds(),
	}
	var wsLadder, wsPark float64
	for _, pol := range []lcws.Policy{lcws.WS, lcws.SignalLCWS} {
		for _, batch := range []bool{false, true} {
			r := MeasureStealLatency(pol, batch, bursts, reps)
			if pol == lcws.WS {
				if batch {
					wsPark = r.NsFirstSteal
				} else {
					wsLadder = r.NsFirstSteal
				}
			}
			rep.Results = append(rep.Results, r)
		}
	}
	if wsPark > 0 {
		rep.SpeedupFirstSteal = wsLadder / wsPark
	}
	return rep
}
