//go:build race

package perf

// RaceEnabled reports whether the race detector is compiled in; timing
// and allocation gates are meaningless under its instrumentation.
const RaceEnabled = true
