package perf

import (
	"testing"

	"lcws"
)

// TestMemFlatAcrossJobs is the flat-memory regression gate: after
// MemJobsTotal mixed-width jobs (narrow with a ~32k-task job every
// MemWideEvery-th submission), post-GC HeapInuse must stay within
// MemFlatRatio of the reading after MemJobsWarm jobs. Without the
// bounded freelists and capped recycle shards, every worker would pin
// the wide jobs' high-water mark of tasks and the final reading would
// sit far above the warm one.
func TestMemFlatAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("memory gate runs the full job stream; skipped in -short")
	}
	if RaceEnabled {
		t.Skip("race instrumentation multiplies heap usage; the flatness gate is meaningless under -race")
	}
	for _, pol := range memPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			res := MeasureMemSteady(pol, MemWorkers, MemJobsWarm, MemJobsTotal)
			t.Logf("%s: HeapInuse warm=%d final=%d ratio=%.3f (returns=%d refills=%d tasks=%d)",
				pol, res.HeapInuseWarm, res.HeapInuseFinal, res.GrowthRatio,
				res.FreelistReturns, res.FreelistRefills, res.TasksExecuted)
			if !MemFlat(res.HeapInuseWarm, res.HeapInuseFinal) {
				t.Errorf("HeapInuse grew from %d to %d (ratio %.3f): exceeds the %.2fx flatness gate",
					res.HeapInuseWarm, res.HeapInuseFinal, res.GrowthRatio, float64(MemFlatRatio))
			}
			// The wide jobs must actually exercise the recycling
			// machinery, or the flatness result is vacuous.
			if res.FreelistReturns == 0 {
				t.Error("no freelist returns recorded: the wide jobs never overflowed the freelist bound")
			}
		})
	}
}

// TestDeepForkGrowthAndSpill pins that the deep-fork configuration
// engages both memory-pressure mechanisms: the tiny deques must grow to
// their cap and then spill, under both deque implementations.
func TestDeepForkGrowthAndSpill(t *testing.T) {
	for _, pol := range []lcws.Policy{lcws.WS, lcws.SignalLCWS} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			res := MeasureMemDeepFork(pol)
			t.Logf("%s: grows=%d spilled=%d tasks=%d", pol, res.DequeGrows, res.TasksSpilled, res.TasksExecuted)
			if res.DequeGrows == 0 {
				t.Errorf("no deque growth recorded on a %d-slot initial capacity under a depth-%d spine",
					MemDeepDequeCap, MemDeepDepth)
			}
			if res.TasksSpilled == 0 {
				t.Errorf("no spills recorded past the %d-slot maximum capacity under a depth-%d spine",
					MemDeepMaxCap, MemDeepDepth)
			}
			if want := uint64(MemDeepDepth); res.TasksExecuted < want {
				t.Errorf("executed %d tasks, want at least %d: spilled tasks were lost", res.TasksExecuted, want)
			}
		})
	}
}
