package injector

import (
	"sync"
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if got := q.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.TryPop()
		if !ok {
			t.Fatalf("TryPop empty at %d", i)
		}
		if v != i {
			t.Fatalf("TryPop = %d, want %d (FIFO violated)", v, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on drained queue returned ok")
	}
	if !q.Empty() {
		t.Fatal("drained queue not Empty")
	}
}

func TestGrowthPreservesOrderAcrossWrap(t *testing.T) {
	var q Queue[int]
	next := 0   // next value to push
	expect := 0 // next value we expect to pop
	// Interleave pushes and pops so head walks around the ring, then
	// force growth while head is in the middle.
	for round := 0; round < 5; round++ {
		for i := 0; i < 6; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 3; i++ {
			v, ok := q.TryPop()
			if !ok || v != expect {
				t.Fatalf("round %d: pop = %d,%v, want %d", round, v, ok, expect)
			}
			expect++
		}
	}
	for !q.Empty() {
		v, ok := q.TryPop()
		if !ok || v != expect {
			t.Fatalf("drain: pop = %d,%v, want %d", v, ok, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d values, pushed %d", expect, next)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	const (
		producers = 8
		consumers = 8
		perProd   = 2000
	)
	var q Queue[int]
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				q.Push(p*perProd + i)
			}
		}(p)
	}

	seen := make([]bool, producers*perProd)
	var mu sync.Mutex
	var consumed sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				v, ok := q.TryPop()
				if !ok {
					select {
					case <-done:
						if q.Empty() {
							return
						}
					default:
					}
					continue
				}
				mu.Lock()
				if seen[v] {
					mu.Unlock()
					t.Errorf("value %d popped twice", v)
					return
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}

	wg.Wait()
	close(done)
	consumed.Wait()

	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost", v)
		}
	}
}

func TestPerProducerOrderPreserved(t *testing.T) {
	// With a single consumer, each producer's values must come out in
	// that producer's push order (MPMC FIFO per producer).
	const producers = 4
	const perProd = 1000
	var q Queue[[2]int] // {producer, seq}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				q.Push([2]int{p, i})
			}
		}(p)
	}
	wg.Wait()
	last := make([]int, producers)
	for i := range last {
		last[i] = -1
	}
	for !q.Empty() {
		v, ok := q.TryPop()
		if !ok {
			break
		}
		if v[1] != last[v[0]]+1 {
			t.Fatalf("producer %d: got seq %d after %d", v[0], v[1], last[v[0]])
		}
		last[v[0]] = v[1]
	}
	for p, l := range last {
		if l != perProd-1 {
			t.Fatalf("producer %d: drained through seq %d, want %d", p, l, perProd-1)
		}
	}
}
