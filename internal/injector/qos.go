package injector

import (
	"sync"
	"sync/atomic"
)

// NumClasses is the number of priority classes the QoS queue serves.
// Index 0 is the most urgent; larger indices are less urgent. The core
// package's JobClass values map one-to-one onto these indices.
const NumClasses = 3

// strideScale is the numerator of all stride arithmetic: a flow of
// weight w advances its virtual time by strideScale/w per item, so
// larger weights receive proportionally more service. 1<<20 keeps the
// integer division exact enough for any sane weight while leaving
// headroom before a uint64 virtual clock could wrap (2^44 pops).
const strideScale = 1 << 20

// QoS is the class-aware MPMC submission queue: NumClasses mutex-
// sharded per-class queues with stride (weighted-fair) pickup order at
// two levels. Between classes, each pop advances the popped class's
// pass by strideScale/classWeight and the next pop serves the ready
// class with the minimum pass, so backlogged classes split pickups in
// proportion to their configured weights. Within a class, items carry
// a virtual finish time chained per weight value (items of equal
// weight form one FIFO flow; distinct weights share the class's
// pickups in proportion to their weights), and a min-heap serves the
// smallest finish time first.
//
// Like the plain Queue it replaces at the scheduler's injector
// position, QoS keeps a single aggregate size word so the parking
// lot's Dekker-style no-lost-wakeup protocol still needs only one
// atomic emptiness probe: Push publishes the size increment before the
// submitter scans the park bitset, and a parking worker sets its park
// bit before re-checking Empty — one of the two must observe the
// other, exactly as before, regardless of which class shard the job
// landed in.
//
// Bounded admission rides on the shards: a class constructed with a
// capacity holds a semaphore channel of that many slots, each queued
// item holds one slot from TryAcquire (or a blocking receive from
// SlotChan) until the pop that removes it returns the slot.
//
//lcws:manifest
type QoS[T any] struct {
	shards [NumClasses]classShard[T] //lcws:field thief-shared — each element is internally synchronized per the classShard manifest

	// size is the aggregate element count across all shards — the single
	// atomic word of the Dekker handshake (see Empty).
	size atomic.Int64 //lcws:field atomic

	// ready is the bitmask of classes with queued items (bit c set =
	// shard c non-empty). Push sets a shard's bit under its lock before
	// publishing size; pops clear it when they empty the shard. Pickers
	// read it lock-free to find candidate classes and to answer the
	// checkpoint-yield probe ReadyAbove without touching any lock.
	ready atomic.Uint32 //lcws:field atomic

	// clock is the global virtual time: the largest pass any pop has
	// *served* (the chosen class's pass before its stride advance — the
	// minimum ready pass at that moment). A class going empty→non-empty
	// catches its pass up to clock so an idle class cannot bank credit
	// and then monopolize pickups when it wakes, yet a backlogged heavy
	// class keeps its earned advantage over lighter ones.
	clock atomic.Uint64 //lcws:field atomic
}

// classShard is one class's queue: a pass-ordered min-heap under a
// mutex, plus the class-level stride state and the admission semaphore.
//
//lcws:manifest
type classShard[T any] struct {
	mu    sync.Mutex    //lcws:field atomic
	heap  []entry[T]    //lcws:field guarded(mu) — min-heap on (pass, seq)
	flows []flowTail    //lcws:field guarded(mu) — per-weight virtual-finish chains
	vt    uint64        //lcws:field guarded(mu) — class-local virtual time (largest popped pass)
	seq   uint64        //lcws:field guarded(mu) — FIFO tie-break allocator
	pass  atomic.Uint64 //lcws:field atomic — class-level stride pass, read lock-free by pickers
	// stride is strideScale/classWeight; slots is the admission
	// semaphore (nil = unbounded), pre-filled with the class capacity.
	stride uint64        //lcws:field immutable
	slots  chan struct{} //lcws:field immutable — channel ops are internally synchronized
	_      [24]byte
}

// entry is one queued item: its payload, its within-class virtual
// finish time, and the FIFO tie-break sequence number.
type entry[T any] struct {
	v    T
	pass uint64
	seq  uint64
}

// flowTail remembers the last virtual finish time handed out to items
// of one weight value, so a burst from one flow is spaced stride apart
// instead of all landing at the same pass.
type flowTail struct {
	weight int
	last   uint64
}

// NewQoS returns a QoS queue with the given per-class weights and
// admission capacities. A non-positive weight defaults to 1; a
// non-positive capacity means unbounded (no admission semaphore).
func NewQoS[T any](weights, caps [NumClasses]int) *QoS[T] {
	q := &QoS[T]{}
	for c := 0; c < NumClasses; c++ {
		w := weights[c]
		if w < 1 {
			w = 1
		}
		q.shards[c].stride = strideScale / uint64(w)
		if caps[c] > 0 {
			sem := make(chan struct{}, caps[c])
			for i := 0; i < caps[c]; i++ {
				sem <- struct{}{}
			}
			q.shards[c].slots = sem
		}
	}
	return q
}

// TryAcquire takes one admission slot of class c without blocking,
// reporting success. Unbounded classes always succeed. Each queued
// item must hold one slot; the pop that removes it returns the slot.
func (q *QoS[T]) TryAcquire(c int) bool {
	sem := q.shards[c].slots
	if sem == nil {
		return true
	}
	select {
	case <-sem:
		return true
	default:
		return false
	}
}

// SlotChan returns class c's admission semaphore for a blocking
// acquire (receive one token = one slot), or nil when the class is
// unbounded — a nil channel blocks forever in a select, so callers
// must TryAcquire first and only select when it failed, which cannot
// happen for unbounded classes.
func (q *QoS[T]) SlotChan(c int) <-chan struct{} { return q.shards[c].slots }

// Release returns an admission slot of class c without pushing; used
// by a submitter that acquired a slot and then rejected the job.
func (q *QoS[T]) Release(c int) {
	if sem := q.shards[c].slots; sem != nil {
		sem <- struct{}{}
	}
}

// Push enqueues v under class c with the given flow weight (values < 1
// are treated as 1). The caller of a bounded class must already hold
// one admission slot for the item. Safe from any goroutine.
func (q *QoS[T]) Push(v T, c, weight int) {
	if weight < 1 {
		weight = 1
	}
	sh := &q.shards[c]
	sh.mu.Lock()
	// Within-class virtual finish time: chain off this weight flow's
	// previous finish (so bursts space out stride apart) but never
	// behind the class virtual time (so an idle flow gets no credit).
	start := sh.vt
	fi := -1
	for i := range sh.flows {
		if sh.flows[i].weight == weight {
			fi = i
			if sh.flows[i].last > start {
				start = sh.flows[i].last
			}
			break
		}
	}
	finish := start + strideScale/uint64(weight)
	if fi >= 0 {
		sh.flows[fi].last = finish
	} else {
		sh.flows = append(sh.flows, flowTail{weight: weight, last: finish})
	}
	sh.heap = heapPush(sh.heap, entry[T]{v: v, pass: finish, seq: sh.seq})
	sh.seq++
	if len(sh.heap) == 1 {
		// Empty→non-empty: catch the class pass up to the global clock
		// (no banked credit), then publish the ready bit *before* the
		// size increment so any picker that observes size > 0 for this
		// item also observes its class bit.
		if clk := q.clock.Load(); clk > sh.pass.Load() {
			sh.pass.Store(clk)
		}
		q.setReady(uint32(1) << uint(c))
	}
	// The size increment is the Dekker publication read by Empty: it
	// must happen before the caller scans the park bitset, and it does —
	// it is sequenced before Push returns.
	q.size.Add(1)
	sh.mu.Unlock()
}

// TryPop removes and returns the item the stride order serves next, or
// (zero, false) when the queue is empty. The empty fast path is a
// single atomic load so busy workers can poll the injector without
// contending on any lock.
func (q *QoS[T]) TryPop() (T, bool) {
	var zero T
	if q.size.Load() == 0 {
		return zero, false
	}
	return q.popMask((1 << NumClasses) - 1)
}

// TryPopAbove pops the next item only if the stride order's next class
// is strictly more urgent than class c (a smaller index): it is the
// checkpoint-yield pickup, which accelerates a more urgent class's
// turn without granting it any pickup the weighted-fair order would
// not have given it anyway.
func (q *QoS[T]) TryPopAbove(c int) (T, bool) {
	var zero T
	above := uint32(1)<<uint(c) - 1
	if q.ready.Load()&above == 0 {
		return zero, false
	}
	// Recompute the full stride choice: yield only when a class above c
	// also holds the minimum pass among all ready classes.
	avail := q.ready.Load() & ((1 << NumClasses) - 1)
	if best := q.bestOf(avail); best < 0 || best >= c {
		return zero, false
	}
	return q.popMask(above)
}

// ReadyAbove reports, with one atomic load, whether any class strictly
// more urgent than c has queued items — the cheap probe a checkpoint
// runs before considering a yield.
func (q *QoS[T]) ReadyAbove(c int) bool {
	return q.ready.Load()&(uint32(1)<<uint(c)-1) != 0
}

// bestOf returns the ready class in mask with the minimum class pass
// (ties to the more urgent class), or -1 when mask is empty.
func (q *QoS[T]) bestOf(mask uint32) int {
	best, bestPass := -1, uint64(0)
	for c := 0; c < NumClasses; c++ {
		if mask&(uint32(1)<<uint(c)) == 0 {
			continue
		}
		if p := q.shards[c].pass.Load(); best < 0 || p < bestPass {
			best, bestPass = c, p
		}
	}
	return best
}

// popMask pops the stride order's next item among the classes in
// allowed, or (zero, false) when none of them holds one.
func (q *QoS[T]) popMask(allowed uint32) (T, bool) {
	var zero T
	for {
		avail := q.ready.Load() & allowed
		if avail == 0 {
			// The lock-free mask can lag pushes and pops by an instant;
			// one locked pass over the allowed shards settles the answer.
			for c := 0; c < NumClasses; c++ {
				if allowed&(uint32(1)<<uint(c)) == 0 {
					continue
				}
				if v, ok := q.popClass(c); ok {
					return v, true
				}
			}
			return zero, false
		}
		if v, ok := q.popClass(q.bestOf(avail)); ok {
			return v, true
		}
		// Raced with another picker that emptied the chosen class;
		// re-read the mask and choose again.
	}
}

// popClass pops class c's minimum-pass item, advances the class-level
// stride state, and releases the item's admission slot. Returns
// (zero, false) when the shard is empty.
func (q *QoS[T]) popClass(c int) (T, bool) {
	var zero T
	sh := &q.shards[c]
	sh.mu.Lock()
	if len(sh.heap) == 0 {
		sh.mu.Unlock()
		return zero, false
	}
	var e entry[T]
	sh.heap, e = heapPopMin(sh.heap)
	if e.pass > sh.vt {
		sh.vt = e.pass
	}
	// served is the virtual time this pop runs at — the class's pass
	// before the stride advance, which the picker chose as the minimum
	// among ready classes. The global clock tracks served, NOT the
	// advanced pass: advancing the clock to pass+stride would let the
	// lightest-weight class (largest stride) drag the clock ahead of
	// everyone, and the empty→non-empty catch-up would then erase the
	// heavy classes' weight advantage every time a closed-loop tenant
	// briefly drained its class.
	served := sh.pass.Load()
	sh.pass.Store(served + sh.stride)
	if len(sh.heap) == 0 {
		q.clearReady(uint32(1) << uint(c))
	}
	q.size.Add(-1)
	sh.mu.Unlock()
	// Advance the global clock to the served time (monotone max) so
	// waking classes catch up to the present rather than the past.
	for {
		old := q.clock.Load()
		if served <= old || q.clock.CompareAndSwap(old, served) {
			break
		}
	}
	if sh.slots != nil {
		// Return the popped item's admission slot. Sends never exceed
		// the channel capacity: every queued item acquired exactly one.
		sh.slots <- struct{}{}
	}
	return e.v, true
}

// Len reports the total number of queued items across all classes.
func (q *QoS[T]) Len() int { return int(q.size.Load()) }

// ClassLen reports the number of queued items of class c.
func (q *QoS[T]) ClassLen(c int) int {
	sh := &q.shards[c]
	sh.mu.Lock()
	n := len(sh.heap)
	sh.mu.Unlock()
	return n
}

// Empty reports whether every shard is empty. It is a single atomic
// load, ordered after Push's aggregate-size publication, so it is safe
// to use in the park/submit Dekker handshake exactly like the plain
// Queue's Empty.
func (q *QoS[T]) Empty() bool { return q.size.Load() == 0 }

// setReady ors bit into the ready mask (Go 1.22 has no atomic Or on
// Uint32).
func (q *QoS[T]) setReady(bit uint32) {
	for {
		old := q.ready.Load()
		if old&bit == bit || q.ready.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// clearReady clears bit in the ready mask.
func (q *QoS[T]) clearReady(bit uint32) {
	for {
		old := q.ready.Load()
		if old&bit == 0 || q.ready.CompareAndSwap(old, old&^bit) {
			return
		}
	}
}

// heapPush inserts e into the (pass, seq) min-heap h.
func heapPush[T any](h []entry[T], e entry[T]) []entry[T] {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// heapPopMin removes and returns the minimum entry of h.
func heapPopMin[T any](h []entry[T]) ([]entry[T], entry[T]) {
	min := h[0]
	n := len(h) - 1
	h[0] = h[n]
	var zero entry[T]
	h[n] = zero // release the payload reference for GC
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && entryLess(h[l], h[small]) {
			small = l
		}
		if r < n && entryLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return h, min
}

func entryLess[T any](a, b entry[T]) bool {
	if a.pass != b.pass {
		return a.pass < b.pass
	}
	return a.seq < b.seq
}
