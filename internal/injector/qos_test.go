package injector

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// drain pops everything and returns the payloads in pickup order.
func drain(t *testing.T, q *QoS[int]) []int {
	t.Helper()
	var out []int
	for {
		v, ok := q.TryPop()
		if !ok {
			break
		}
		out = append(out, v)
	}
	if !q.Empty() || q.Len() != 0 {
		t.Fatalf("queue not empty after drain: Len=%d", q.Len())
	}
	return out
}

func TestQoSFIFOWithinOneFlow(t *testing.T) {
	q := NewQoS[int]([NumClasses]int{}, [NumClasses]int{})
	for i := 0; i < 10; i++ {
		q.Push(i, 1, 1)
	}
	got := drain(t, q)
	for i, v := range got {
		if v != i {
			t.Fatalf("pop %d = %d, want %d (single flow must stay FIFO)", i, v, i)
		}
	}
}

func TestQoSClassWeightsSplitPickups(t *testing.T) {
	// Classes weighted 4:2:1; 70 items per class, all backlogged up
	// front. The stride order is deterministic: any prefix of pickups
	// splits ~4:2:1 between the classes.
	q := NewQoS[int]([NumClasses]int{4, 2, 1}, [NumClasses]int{})
	const per = 70
	for i := 0; i < per; i++ {
		for c := 0; c < NumClasses; c++ {
			q.Push(c, c, 1)
		}
	}
	counts := [NumClasses]int{}
	const prefix = 70 // 70 pickups = 40 + 20 + 10 at exact proportionality
	for i := 0; i < prefix; i++ {
		v, ok := q.TryPop()
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		counts[v]++
	}
	want := [NumClasses]float64{4.0 / 7, 2.0 / 7, 1.0 / 7}
	for c := 0; c < NumClasses; c++ {
		share := float64(counts[c]) / prefix
		if share < want[c]/1.3 || share > want[c]*1.3 {
			t.Errorf("class %d share %.3f (count %d), want %.3f within 1.3x", c, share, counts[c], want[c])
		}
	}
}

func TestQoSJobWeightsSplitWithinClass(t *testing.T) {
	// One class, three flows at weights 1:2:4, backlogged bursts. The
	// per-flow virtual-finish chaining must interleave the bursts in
	// weight proportion, not serve the first burst wholesale.
	q := NewQoS[int]([NumClasses]int{}, [NumClasses]int{})
	for i := 0; i < 20; i++ {
		q.Push(1, 1, 1)
	}
	for i := 0; i < 40; i++ {
		q.Push(2, 1, 2)
	}
	for i := 0; i < 80; i++ {
		q.Push(4, 1, 4)
	}
	counts := map[int]int{}
	const prefix = 70 // = 10 + 20 + 40 at exact proportionality
	for i := 0; i < prefix; i++ {
		v, ok := q.TryPop()
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		counts[v]++
	}
	for _, w := range []int{1, 2, 4} {
		share := float64(counts[w]) / prefix
		want := float64(w) / 7
		if share < want/1.3 || share > want*1.3 {
			t.Errorf("weight %d share %.3f (count %d), want %.3f within 1.3x", w, share, counts[w], want)
		}
	}
}

func TestQoSTryPopAboveOnlyOnUrgentTurn(t *testing.T) {
	q := NewQoS[int]([NumClasses]int{4, 2, 1}, [NumClasses]int{})
	if _, ok := q.TryPopAbove(2); ok {
		t.Fatal("TryPopAbove on empty queue returned an item")
	}
	q.Push(2, 2, 1) // a Low item: nothing above Low
	if _, ok := q.TryPopAbove(2); ok {
		t.Fatal("TryPopAbove(Low) must not pop a Low item")
	}
	q.Push(0, 0, 1) // a High item arrives: its caught-up pass ties and wins
	v, ok := q.TryPopAbove(2)
	if !ok || v != 0 {
		t.Fatalf("TryPopAbove(Low) = (%d, %v), want the High item", v, ok)
	}
	if q.ReadyAbove(2) || q.Len() != 1 {
		t.Fatalf("expected only the Low item to remain, Len=%d ReadyAbove=%v", q.Len(), q.ReadyAbove(2))
	}
	// With only Low queued again, a High-turn yield is impossible.
	if _, ok := q.TryPopAbove(2); ok {
		t.Fatal("TryPopAbove(Low) popped with no higher class queued")
	}
}

func TestQoSAdmissionSlots(t *testing.T) {
	q := NewQoS[int]([NumClasses]int{}, [NumClasses]int{0, 2, 0})
	if !q.TryAcquire(0) {
		t.Fatal("unbounded class refused admission")
	}
	if !q.TryAcquire(1) || !q.TryAcquire(1) {
		t.Fatal("bounded class refused admission below capacity")
	}
	q.Push(10, 1, 1)
	q.Push(11, 1, 1)
	if q.TryAcquire(1) {
		t.Fatal("bounded class admitted past capacity")
	}
	if q.SlotChan(1) == nil {
		t.Fatal("bounded class has no slot channel")
	}
	if q.SlotChan(0) != nil {
		t.Fatal("unbounded class has a slot channel")
	}
	if _, ok := q.TryPop(); !ok {
		t.Fatal("pop failed")
	}
	if !q.TryAcquire(1) {
		t.Fatal("pop did not release the admission slot")
	}
	q.Release(1)
	if !q.TryAcquire(1) {
		t.Fatal("Release did not return the slot")
	}
	q.Release(1)
}

func TestQoSConcurrentPushPop(t *testing.T) {
	q := NewQoS[int]([NumClasses]int{4, 2, 1}, [NumClasses]int{})
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(p, (p+i)%NumClasses, 1+i%4)
			}
		}(p)
	}
	var popped atomic.Int64
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for popped.Load() < producers*perProducer {
				if _, ok := q.TryPop(); ok {
					popped.Add(1)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	if got := popped.Load(); got != producers*perProducer {
		t.Fatalf("popped %d items, want %d", got, producers*perProducer)
	}
	if !q.Empty() {
		t.Fatalf("queue not empty after concurrent drain")
	}
}
