// Package injector provides the MPMC submission queues that carry
// externally submitted jobs into the resident worker pool.
//
// Two queues live here. Queue is the original deliberately boring
// mutex-protected growable FIFO ring. QoS is the class-aware queue the
// scheduler actually uses since the multi-tenant work: NumClasses
// mutex-sharded per-class queues with stride (weighted-fair) pickup
// between and within classes, plus per-class bounded admission.
// Submission is an off-hot-path operation (once per job, not once per
// task), so the deque-style lock-free machinery in internal/deque
// would buy nothing and cost a second verification surface.
//
// What the executor needs from either queue is a cheap, *atomic*
// emptiness probe that idle workers can poll without taking a lock and
// — crucially — that participates in the parking lot's Dekker-style
// no-lost-wakeup protocol: a submitter publishes (Push updates the
// aggregate atomic length under a shard lock) and then scans the park
// bitset, while a parking worker sets its park bit and then re-checks
// Empty. One of the two must observe the other, regardless of which
// class shard the job landed in.
package injector

import (
	"sync"
	"sync/atomic"
)

// Queue is an unbounded multi-producer multi-consumer FIFO.
// The zero value is ready to use.
//
//lcws:manifest
type Queue[T any] struct {
	mu   sync.Mutex   //lcws:field atomic
	buf  []T          //lcws:field guarded(mu)
	head int          //lcws:field guarded(mu) — index of the oldest element
	n    int          //lcws:field guarded(mu) — number of elements
	size atomic.Int64 //lcws:field atomic
}

const minCap = 8

// Push appends v to the tail. Safe from any goroutine.
func (q *Queue[T]) Push(v T) {
	q.mu.Lock()
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	q.size.Store(int64(q.n))
	q.mu.Unlock()
}

// TryPop removes and returns the oldest element, or (zero, false) when
// the queue is empty. The empty fast path is a single atomic load so
// busy workers can poll the injector without contending on the lock.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if q.size.Load() == 0 {
		return zero, false
	}
	q.mu.Lock()
	if q.n == 0 {
		q.mu.Unlock()
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release the reference for GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.size.Store(int64(q.n))
	q.mu.Unlock()
	return v, true
}

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return int(q.size.Load()) }

// Empty reports whether the queue is empty. It is a single atomic
// load, ordered after Push's length publication, so it is safe to use
// in the park/submit Dekker handshake.
func (q *Queue[T]) Empty() bool { return q.size.Load() == 0 }

// grow doubles the ring, called with q.mu held and the ring full.
//
//lcws:locked mu
func (q *Queue[T]) grow() {
	newCap := len(q.buf) * 2
	if newCap < minCap {
		newCap = minCap
	}
	nb := make([]T, newCap)
	m := copy(nb, q.buf[q.head:])
	copy(nb[m:], q.buf[:q.head])
	q.buf = nb
	q.head = 0
}
