package verify

import (
	"encoding/binary"
	"fmt"
	"sort"

	"lcws/internal/deque"
)

// maxThreads bounds the thread count of a scenario (1 owner + thieves).
const maxThreads = 4

// maxSlots is the largest modelled task array.
const maxSlots = 16

// thread is the per-thread execution state of the step-VM. The owner is
// thread 0; it additionally carries the emulated signal handler's frame
// (hphase/h1), which is non-zero while an exposure handler interrupts
// the current operation.
type thread struct {
	ip    uint8 // index of the current op in the script / attempt count
	phase uint8 // micro-pc inside the current op; 0 = operation boundary
	drain uint8 // 0 = not draining; 1 = sub-op PopBottom; 2 = sub-op PopPublicBottom; 3 = sub-op UnexposeAll
	// registers (meaning depends on the op; see step.go). r4 exists for
	// the batched PopTopHalf, whose slot-read loop needs a count and a
	// cursor on top of the age/publicBot/ids registers.
	r1, r2, r3, r4 uint64
	// cl is the thief's private monotone claim memory (deque.RelClaim)
	// for relaxed scenarios. Unlike the registers it survives operation
	// boundaries: it is per-thief persistent state, not per-op scratch.
	cl uint64
	// signal-handler frame (owner only). h2 exists for the relaxed
	// repair fold the handler's Expose runs before exposing.
	hphase uint8
	h1, h2 uint64
}

// state is one node of the explored transition system. It is a value
// type: cloning is a plain assignment.
type state struct {
	bot        uint64
	publicBot  uint64
	age        uint64 // packed (tag<<32 | top), as in deque.packAge
	cap        uint16 // current task-array capacity; OpGrow doubles it
	slots      [maxSlots]uint8
	th         [maxThreads]thread
	nthreads   uint8
	sigPending bool
	sigBudget  uint8
	pushed     uint16 // bitmask of pushed task ids
	returned   uint16 // bitmask of returned task ids
	// relNext is the relaxed-claim cursor, packed (tag<<32 | idx) like
	// the age word, mirroring deque.SplitDeque.relNext (relaxed
	// scenarios only; stays 0 otherwise).
	relNext uint64
	// retCounts packs a 4-bit return count per task id (nibble id holds
	// how many times task id was returned). Relaxed scenarios return
	// idempotent tasks more than once by design; the bitmask above
	// detects first returns (lost-task oracle) while the counts carry
	// the multiplicity-bound oracle.
	retCounts uint64
	// taskIdx records, per task id, the absolute index the task was
	// pushed at — the model of the descriptor's push stamp
	// (core.Task.pushStamp): it is written in the same micro-step as the
	// slot store (the stamp travels inside the descriptor, so a slot
	// read observes the pair atomically) and is immutable afterwards
	// (the model pushes every id at most once and never resets
	// indices). Circular scenarios validate it on the relaxed claim
	// path; it stays zero otherwise.
	taskIdx [maxTaskID + 1]uint8
}

// phys maps an absolute deque index to the physical slot it occupies:
// the identity on the absolute-index model, index mod capacity on the
// circular model — where a push one full capacity ahead of a dead
// index physically overwrites its slot (mask aliasing).
func (s *state) phys(sc *Scenario, idx uint64) uint64 {
	if sc.Circular {
		return idx % uint64(s.cap)
	}
	return idx
}

// rehash re-lays the live window [top, bot) out for a doubled capacity
// (Circular growth): the grown generation holds every live task at its
// absolute index re-masked by the new capacity, and dead physical
// slots start empty. The model has a single array, so the superseded
// generation's contents are dropped; a thief holding a stale claim
// then reads an empty slot where the implementation would read the old
// generation's stale task — either way the stamp validation's verdict
// is an abort, so the interleavings explored are the same.
func (s *state) rehash(top uint64, newCap uint16) {
	var ns [maxSlots]uint8
	for i := top; i < s.bot; i++ {
		ns[i%uint64(newCap)] = s.slots[i%uint64(s.cap)]
	}
	s.slots = ns
	s.cap = newCap
}

func unpackAge(a uint64) (top, tag uint32) { return uint32(a), uint32(a >> 32) }

func packAge(top, tag uint32) uint64 { return uint64(tag)<<32 | uint64(top) }

// initialState builds the start state of a scenario.
func initialState(sc *Scenario) state {
	var s state
	s.cap = uint16(sc.Capacity)
	s.nthreads = uint8(1 + sc.Thieves)
	s.sigPending = sc.InitialSignal
	s.sigBudget = uint8(sc.SignalBudget)
	return s
}

// threadDone reports whether thread tid has no more operations to run.
func (s *state) threadDone(sc *Scenario, tid int) bool {
	t := &s.th[tid]
	if tid == 0 {
		return int(t.ip) >= len(sc.Owner) && t.hphase == 0
	}
	return int(t.ip) >= sc.StealAttempts
}

// terminal reports whether every thread has finished.
func (s *state) terminal(sc *Scenario) bool {
	for i := 0; i < int(s.nthreads); i++ {
		if !s.threadDone(sc, i) {
			return false
		}
	}
	return true
}

// quiescent reports whether every thread sits at an operation boundary
// with no handler in flight — the points where the paper's index
// invariant must hold.
func (s *state) quiescent() bool {
	for i := 0; i < int(s.nthreads); i++ {
		if s.th[i].phase != 0 || s.th[i].hphase != 0 {
			return false
		}
	}
	return true
}

// checkState evaluates state-level assertions: the index invariant at
// quiescent states and the no-lost-task condition at terminal states.
func (s *state) checkState(sc *Scenario) *Violation {
	if s.quiescent() {
		top, _ := unpackAge(s.age)
		if uint64(top) > s.publicBot {
			return &Violation{Kind: IndexInvariant,
				Detail: fmt.Sprintf("top=%d > publicBot=%d (bot=%d)", top, s.publicBot, s.bot)}
		}
		if s.bot < s.publicBot {
			// The §4 race-fix PopBottom may leave bot exactly one below
			// publicBot until the next PopPublicBottom repairs it.
			if !sc.RaceFix || s.bot != s.publicBot-1 {
				return &Violation{Kind: IndexInvariant,
					Detail: fmt.Sprintf("publicBot=%d > bot=%d (top=%d, raceFix=%v)", s.publicBot, s.bot, top, sc.RaceFix)}
			}
		}
	}
	if s.terminal(sc) && sc.RequireDrain {
		if s.returned != s.pushed {
			return &Violation{Kind: LostTask,
				Detail: fmt.Sprintf("pushed ids %016b, returned %016b", s.pushed, s.returned)}
		}
		top, _ := unpackAge(s.age)
		if !(uint64(top) == s.publicBot && s.publicBot == s.bot) {
			return &Violation{Kind: LostTask,
				Detail: fmt.Sprintf("deque not empty at terminal state: top=%d publicBot=%d bot=%d", top, s.publicBot, s.bot)}
		}
	}
	return nil
}

// recordReturn accounts a task id returned to some thread. In the
// exclusive protocols any second return is a DuplicateTask violation.
// In relaxed scenarios idempotent tasks may be returned more than once
// by design; the oracle instead enforces the MultFree multiplicity
// bound — at most Thieves+1 returns per task (each thief's monotone
// claim memory admits one return per thief, plus at most one absorbed
// owner re-execution from the fence-free claim window) — and keeps the
// exactly-once rule for pinned (non-idempotent) tasks.
func (s *state) recordReturn(sc *Scenario, id uint8) *Violation {
	bit := uint16(1) << id
	shift := 4 * uint(id)
	cnt := (s.retCounts>>shift)&0xf + 1
	s.retCounts = s.retCounts&^(0xf<<shift) | cnt<<shift
	s.returned |= bit
	if !sc.Relaxed {
		if cnt > 1 {
			return &Violation{Kind: DuplicateTask,
				Detail: fmt.Sprintf("task %d returned twice", id)}
		}
		return nil
	}
	if sc.Pinned&bit != 0 && cnt > 1 {
		return &Violation{Kind: DuplicateTask,
			Detail: fmt.Sprintf("non-idempotent task %d returned twice", id)}
	}
	if bound := uint64(sc.Thieves) + 1; cnt > bound {
		return &Violation{Kind: MultiplicityExceeded,
			Detail: fmt.Sprintf("task %d returned %d times, bound is thieves+1 = %d", id, cnt, bound)}
	}
	return nil
}

// key encodes the state into a canonical string for memoization.
// Identical thief threads are sorted, which quotients the search by
// thief symmetry (thieves run identical programs and are never
// distinguished by the properties we check).
const threadKeyLen = 1 + 1 + 1 + 1 + 5*8

func (s *state) key() string {
	// The whole maxSlots array is encoded (not just the initial
	// capacity): after an OpGrow, slots beyond the scenario's starting
	// capacity hold live tasks. The mutable capacity itself is part of
	// the state — two schedules that differ only in whether growth has
	// been published are distinct.
	buf := make([]byte, 0, 8*5+maxSlots+8+threadKeyLen*int(s.nthreads)+16)
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], s.bot)
	buf = append(buf, w[:]...)
	binary.LittleEndian.PutUint64(w[:], s.publicBot)
	buf = append(buf, w[:]...)
	binary.LittleEndian.PutUint64(w[:], s.age)
	buf = append(buf, w[:]...)
	binary.LittleEndian.PutUint64(w[:], s.relNext)
	buf = append(buf, w[:]...)
	binary.LittleEndian.PutUint64(w[:], s.retCounts)
	buf = append(buf, w[:]...)
	buf = append(buf, s.slots[:]...)
	buf = append(buf, s.taskIdx[:]...)
	flags := byte(0)
	if s.sigPending {
		flags = 1
	}
	buf = append(buf, flags, s.sigBudget, byte(s.cap), byte(s.cap>>8),
		byte(s.pushed), byte(s.pushed>>8), byte(s.returned), byte(s.returned>>8))

	encTh := func(t *thread) [threadKeyLen]byte {
		var tb [threadKeyLen]byte
		tb[0], tb[1], tb[2], tb[3] = t.ip, t.phase, t.drain, t.hphase
		binary.LittleEndian.PutUint64(tb[4:], t.r1)
		binary.LittleEndian.PutUint64(tb[12:], t.r2)
		binary.LittleEndian.PutUint64(tb[20:], t.r3)
		binary.LittleEndian.PutUint64(tb[28:], t.r4)
		binary.LittleEndian.PutUint64(tb[36:], t.cl)
		return tb
	}
	owner := encTh(&s.th[0])
	buf = append(buf, owner[:]...)
	binary.LittleEndian.PutUint64(w[:], s.th[0].h1)
	buf = append(buf, w[:]...)
	binary.LittleEndian.PutUint64(w[:], s.th[0].h2)
	buf = append(buf, w[:]...)

	nth := int(s.nthreads) - 1
	thieves := make([][threadKeyLen]byte, nth)
	for i := 0; i < nth; i++ {
		thieves[i] = encTh(&s.th[i+1])
	}
	sort.Slice(thieves, func(i, j int) bool {
		a, b := thieves[i], thieves[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	for i := range thieves {
		buf = append(buf, thieves[i][:]...)
	}
	return string(buf)
}

// exposeCount is the number of tasks Expose transfers for r private
// tasks under the given mode, mirroring deque.(*SplitDeque).Expose.
func exposeCount(mode deque.ExposeMode, r uint64) uint64 {
	switch mode {
	case deque.ExposeOne:
		if r >= 1 {
			return 1
		}
	case deque.ExposeConservative:
		if r >= 2 {
			return 1
		}
	case deque.ExposeHalf:
		if r >= 3 {
			return (r + 1) / 2
		}
		if r >= 1 {
			return 1
		}
	default:
		panic(fmt.Sprintf("verify: unknown expose mode %d", mode))
	}
	return 0
}
