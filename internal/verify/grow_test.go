package verify

import (
	"strings"
	"testing"

	"lcws/internal/deque"
)

// TestGrowSafeUnderStealStorm is the growth tentpole positive result for
// the base LCWS policy (race-fix pop_bottom, single steals): an owner
// that grows the array mid-stream — with exposure signals deliverable at
// every micro-step boundary, including between growth's age load and its
// publish — and then pushes past the original capacity can neither
// duplicate nor lose a task against concurrent thieves.
func TestGrowSafeUnderStealStorm(t *testing.T) {
	mustClean(t, Scenario{
		Name:     "grow-racefix-steal-storm",
		RaceFix:  true,
		Capacity: 2,
		Owner: []Op{
			Push(1), Push(2),
			Grow(),           // capacity 2 -> 4 while task 1 may be public
			Push(3), Push(4), // past the original capacity
			Drain(),
		},
		Thieves:       2,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		AutoSignal:    true,
		SignalBudget:  2,
		RequireDrain:  true,
	})
}

// TestGrowSafeConservativePolicy re-checks growth under the §4.1.1
// Conservative Exposure policy with the ORIGINAL pop_bottom — the other
// verified owner configuration. Growth must not reintroduce the race the
// conservative policy avoids.
func TestGrowSafeConservativePolicy(t *testing.T) {
	mustClean(t, Scenario{
		Name:     "grow-conservative-original-pop",
		RaceFix:  false,
		Capacity: 2,
		Owner: []Op{
			Push(1), Push(2),
			Grow(),
			Push(3),
			Drain(),
		},
		Thieves:       1,
		StealAttempts: 3,
		Expose:        deque.ExposeConservative,
		AutoSignal:    true,
		SignalBudget:  2,
		RequireDrain:  true,
	})
}

// TestGrowSafeUnderBatchedSteals extends the growth result to the batch
// mode: PopTopHalf thieves (multi-slot claims under one CAS) racing a
// growth publish and the batch owner discipline (DrainBatch, reclaim via
// UnexposeAll).
func TestGrowSafeUnderBatchedSteals(t *testing.T) {
	mustClean(t, Scenario{
		Name:     "grow-stealhalf-batch-drain",
		RaceFix:  true,
		Capacity: 2,
		Owner: []Op{
			Push(1), Push(2),
			Grow(),
			Push(3), Push(4),
			DrainBatch(),
		},
		Thieves:       2,
		StealAttempts: 2,
		StealHalf:     true,
		BatchBuf:      4,
		Expose:        deque.ExposeHalf,
		AutoSignal:    true,
		SignalBudget:  2,
		RequireDrain:  true,
	})
}

// TestGrowMidDrainExposure delivers the exposure signal with growth
// sandwiched between pops: the §4 race window (signal mid pop_bottom)
// must stay closed across a generation change.
func TestGrowMidDrainExposure(t *testing.T) {
	mustClean(t, Scenario{
		Name:     "grow-mid-pop-exposure",
		RaceFix:  true,
		Capacity: 2,
		Owner: []Op{
			Push(1), Push(2), Pop(),
			Grow(),
			Push(3), Push(4),
			Drain(),
		},
		Thieves:       1,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		InitialSignal: true,
		SignalBudget:  1,
		RequireDrain:  true,
	})
}

// TestGrowNaiveDuplicatesTasks is the negative result that justifies the
// index-preserving protocol: a compacting growth that rebases indices
// without bumping the ABA tag lets a thief holding a pre-growth age
// snapshot (same top, same tag) pass its CAS against a slot whose
// content the compaction rewrote — returning an already-consumed task a
// second time. The model checker must find the duplicate.
//
// Concretely: thief A steals task 1 (top 0 -> 1); thief B has read
// age=(0,tag) and slot[0]=task1 but stalls before its CAS; the owner
// pushes task 2 and grow_naive compacts it down to index 0 with
// age=(0,tag) — thief B's stale CAS now succeeds and returns task 1
// again.
func TestGrowNaiveDuplicatesTasks(t *testing.T) {
	r := Check(Scenario{
		Name:     "grow-naive-duplicates",
		RaceFix:  true,
		Capacity: 2,
		Owner: []Op{
			Push(1),
			UpdatePublicBottom(), // expose task 1
			Push(2),
			GrowNaive(), // compacts task 2 to index 0 without a tag bump
		},
		Thieves:       2,
		StealAttempts: 1,
		Expose:        deque.ExposeOne,
	})
	logReport(t, r)
	if r.Truncated {
		t.Fatalf("exploration truncated at %d states", r.States)
	}
	var dup *Violation
	for i := range r.Violations {
		if r.Violations[i].Kind == DuplicateTask {
			dup = &r.Violations[i]
			break
		}
	}
	if dup == nil {
		t.Fatalf("model checker failed to show naive growth duplicates tasks; found %v", r.Violations)
	}
	trace := strings.Join(dup.Trace, "\n")
	if !strings.Contains(trace, "grow_naive") {
		t.Errorf("counterexample does not involve grow_naive:\n%s", trace)
	}
	t.Logf("counterexample (%d steps):\n  %s", len(dup.Trace), strings.Join(dup.Trace, "\n  "))
}

// TestGrowSoundWhereNaiveIsNot is the control for the negative test: the
// index-preserving Grow in the exact same scenario is clean — the only
// difference between the two runs is the growth protocol.
func TestGrowSoundWhereNaiveIsNot(t *testing.T) {
	mustClean(t, Scenario{
		Name:     "grow-sound-control",
		RaceFix:  true,
		Capacity: 2,
		Owner: []Op{
			Push(1),
			UpdatePublicBottom(),
			Push(2),
			Grow(),
			Drain(),
		},
		Thieves:       2,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		RequireDrain:  true,
	})
}

// TestUnexposeAllWithLivePrivatePart model-checks the precondition
// SpillOldest relies on: UnexposeAll called while the private part is
// NON-empty (previously only legal after pop_bottom returned nil) must
// reclaim the public part without truncating or duplicating the private
// tasks — this is what the conditional bot repairs guarantee.
func TestUnexposeAllWithLivePrivatePart(t *testing.T) {
	for _, raceFix := range []bool{false, true} {
		name := "unexpose-live-private-original"
		if raceFix {
			name = "unexpose-live-private-racefix"
		}
		mustClean(t, Scenario{
			Name:     name,
			RaceFix:  raceFix,
			Capacity: 4,
			Owner: []Op{
				Push(1), Push(2), Push(3),
				UpdatePublicBottom(), // exposes task 1
				UnexposeAll(),        // tasks 2,3 still private — must survive
				Drain(),
			},
			Thieves:       2,
			StealAttempts: 2,
			Expose:        deque.ExposeOne,
			RequireDrain:  true,
		})
	}
}

// TestGrowOpStrings pins the rendering of the new ops as they appear in
// counterexample traces.
func TestGrowOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		Grow():      "grow",
		GrowNaive(): "grow_naive",
	} {
		if got := op.String(); got != want {
			t.Errorf("op %v String = %q, want %q", op.Kind, got, want)
		}
	}
}
