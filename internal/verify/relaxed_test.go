package verify

import (
	"strings"
	"testing"

	"lcws/internal/deque"
)

// These tests are the MultFree half of the model checker's CI duty: the
// exhaustive multiplicity-bound proof for the relaxed (fence- and
// CAS-free) claim protocol of deque.TakeTopRelaxed, the exactly-once
// proof for pinned (non-idempotent) tasks, and the negative result that
// justifies the owner-side repairRelaxed fold.
//
// The division of labour the tests establish:
//
//   - The per-thief monotone claim memory (deque.RelClaim) carries the
//     worst-case bound: every task is returned at most Thieves+1 times
//     under the UNRESTRICTED adversary — even with the repair ablated.
//   - The owner repair fold carries exactly-once delivery for claims
//     that have landed: under the synchronous adversary (AtomicClaims)
//     it alone keeps even stateless thieves exactly-once, and ablating
//     it lets every unexpose/re-expose epoch re-offer claimed work —
//     multiplicity then grows with the number of epochs, which is the
//     unbounded counterexample truncated to the model's bounds.

// TestRelaxedDrainSingleThief is the basic positive result: a relaxed
// thief racing the batch-discipline owner over two tasks never loses a
// task, never exceeds the multiplicity bound, and the drain terminates
// with consistent indices.
func TestRelaxedDrainSingleThief(t *testing.T) {
	mustClean(t, Scenario{
		Name:          "relaxed-drain-single-thief",
		RaceFix:       true,
		Relaxed:       true,
		Owner:         []Op{Push(1), Push(2), UpdatePublicBottom(), DrainBatch()},
		Thieves:       1,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		RequireDrain:  true,
	})
}

// TestRelaxedInFlightDuplicateIsBounded pins down the protocol's
// honest price: a relaxed claim suspended between its slot read and its
// cursor store is invisible to the owner's repair fold, so the owner
// can reclaim and re-execute the claimed task — the absorbed duplicate
// the scheduler's generation-stamp arbitration pays for. The bound is
// tight: the explorer must REACH multiplicity 2 (duplicates genuinely
// occur) and must never exceed Thieves+1 = 2.
func TestRelaxedInFlightDuplicateIsBounded(t *testing.T) {
	r := mustClean(t, Scenario{
		Name:          "relaxed-inflight-duplicate-bounded",
		RaceFix:       true,
		Relaxed:       true,
		Owner:         []Op{Push(1), UpdatePublicBottom(), DrainBatch()},
		Thieves:       1,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		RequireDrain:  true,
	})
	if r.MaxMultiplicity != 2 {
		t.Errorf("MaxMultiplicity = %d, want 2: the in-flight claim window must make the owner "+
			"re-execute the claimed task in some schedule (bound tightness)", r.MaxMultiplicity)
	}
}

// TestRelaxedSignalProtocolTwoThieves runs the full signal regime —
// thieves notify on PRIVATE_WORK, the handler's Expose (with its repair
// fold) fires at every possible owner micro-step boundary — with two
// relaxed thieves over three tasks.
func TestRelaxedSignalProtocolTwoThieves(t *testing.T) {
	mustClean(t, Scenario{
		Name:          "relaxed-signal-two-thieves",
		RaceFix:       true,
		Relaxed:       true,
		Owner:         []Op{Push(1), Push(2), Push(3), DrainBatch()},
		Thieves:       2,
		StealAttempts: 2,
		Expose:        deque.ExposeHalf,
		AutoSignal:    true,
		SignalBudget:  2,
		RequireDrain:  true,
	})
}

// TestRelaxedPinnedNeverDuplicated checks the idempotence gate: pinned
// tasks (the model's Fork2-closure stand-ins) must be returned exactly
// once in every schedule. Relaxed thieves may take them only through
// the exclusive CAS fallback, and only when the claim is the
// authoritative top; the recordReturn oracle keeps the exactly-once
// rule for them even though the surrounding scenario is relaxed.
func TestRelaxedPinnedNeverDuplicated(t *testing.T) {
	mustClean(t, Scenario{
		Name:          "relaxed-pinned-exactly-once",
		RaceFix:       true,
		Relaxed:       true,
		Pinned:        Pin(1),
		Owner:         []Op{Push(1), Push(2), UpdatePublicBottom(), UpdatePublicBottom(), DrainBatch()},
		Thieves:       2,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		RequireDrain:  true,
	})
}

// TestRelaxedClaimMemoryCarriesTheBound is the completeness half of the
// protocol's correctness argument: under the UNRESTRICTED adversary
// (claims suspended at any micro-step) and with the owner repair
// ABLATED, the per-thief monotone claim memory alone still enforces
// the Thieves+1 bound across three expose/unexpose epochs — the thief
// never re-claims an index it already returned, because a relaxed
// deque's absolute indices never reset.
func TestRelaxedClaimMemoryCarriesTheBound(t *testing.T) {
	mustClean(t, Scenario{
		Name:            "relaxed-claim-memory-carries-bound",
		RaceFix:         true,
		Relaxed:         true,
		RelaxedNoRepair: true,
		Owner: []Op{
			Push(1),
			UpdatePublicBottom(), UnexposeAll(),
			UpdatePublicBottom(), UnexposeAll(),
			UpdatePublicBottom(),
			DrainBatch(),
		},
		Thieves:       1,
		StealAttempts: 3,
		Expose:        deque.ExposeOne,
		RequireDrain:  true,
	})
}

// TestRelaxedRepairExactlyOnceForStatelessThieves isolates what the
// repair fold contributes. The adversary is synchronous (AtomicClaims:
// every claim lands before the owner's next operation) and the thieves
// are STATELESS (no claim memory — the model of "a fresh thief every
// epoch", which is how multiplicity would grow without bound in a
// system with unboundedly many thieves). With the repair fold on, every
// landed claim is folded into top before the owner reclaims or
// re-exposes, so even this adversary gets exactly-once delivery:
// MaxMultiplicity must be exactly 1.
func TestRelaxedRepairExactlyOnceForStatelessThieves(t *testing.T) {
	r := mustClean(t, Scenario{
		Name:                 "relaxed-repair-exactly-once-stateless",
		RaceFix:              true,
		Relaxed:              true,
		RelaxedNoClaimMemory: true,
		AtomicClaims:         true,
		Owner: []Op{
			Push(1),
			UpdatePublicBottom(), UnexposeAll(),
			UpdatePublicBottom(), UnexposeAll(),
			UpdatePublicBottom(),
			DrainBatch(),
		},
		Thieves:       1,
		StealAttempts: 3,
		Expose:        deque.ExposeOne,
		RequireDrain:  true,
	})
	if r.MaxMultiplicity != 1 {
		t.Errorf("MaxMultiplicity = %d, want 1: with the repair fold every landed claim is "+
			"folded into top and never re-offered", r.MaxMultiplicity)
	}
}

// TestRelaxedNoRepairBreaksTheBound is the negative result the owner
// repair exists for: the SAME scenario as the test above with only the
// repair ablated. Each UnexposeAll now reclaims the already-claimed
// task (the stale-tagged cursor is ignored, top never advances past the
// claim), each re-exposure offers it again, and a fresh (stateless)
// claim per epoch drives the task's multiplicity past Thieves+1. The
// checker must exhibit the counterexample, and its trace must show the
// reclaim/re-expose epochs with repeated relaxed claims of one task.
func TestRelaxedNoRepairBreaksTheBound(t *testing.T) {
	r := Check(Scenario{
		Name:                 "relaxed-no-repair-breaks-bound",
		RaceFix:              true,
		Relaxed:              true,
		RelaxedNoRepair:      true,
		RelaxedNoClaimMemory: true,
		AtomicClaims:         true,
		Owner: []Op{
			Push(1),
			UpdatePublicBottom(), UnexposeAll(),
			UpdatePublicBottom(), UnexposeAll(),
			UpdatePublicBottom(),
			DrainBatch(),
		},
		Thieves:       1,
		StealAttempts: 3,
		Expose:        deque.ExposeOne,
		RequireDrain:  true,
	})
	logReport(t, r)
	if r.Truncated {
		t.Fatalf("exploration truncated at %d states", r.States)
	}
	var mult *Violation
	for i := range r.Violations {
		if r.Violations[i].Kind == MultiplicityExceeded {
			mult = &r.Violations[i]
			break
		}
	}
	if mult == nil {
		t.Fatalf("model checker failed to show the bound breaks without the owner repair; found %v", r.Violations)
	}
	trace := strings.Join(mult.Trace, "\n")
	if !strings.Contains(trace, "unexpose_all") {
		t.Errorf("counterexample does not route through the un-repaired reclaim:\n%s", trace)
	}
	if n := strings.Count(trace, "RELAXED-STOLEN task 1"); n < 2 {
		t.Errorf("counterexample shows %d relaxed claims of task 1, want >= 2 (one per re-expose epoch):\n%s", n, trace)
	}
	t.Logf("counterexample (%d steps):\n  %s", len(mult.Trace), strings.Join(mult.Trace, "\n  "))
}

// circularAliasScenario is the mask-aliasing hazard distilled to the
// smallest circular model that exhibits it: capacity 2, and an owner
// script whose claims are folded into top by the interleaved exposures,
// so the live window can slide a full capacity before push(3) — which
// then lands on the physical slot of absolute index 0. A thief that
// loaded its claim=0 and publicBot before stalling wakes up over a slot
// that now holds task 3, a task the owner never exposed at that index.
// With the stamp validation on, every such schedule aborts (or falls
// back to the retroactively-validating exclusive CAS at the
// authoritative top); the RelaxedNoStampCheck ablation instead commits
// the aliased read and the StaleSlotRead oracle exhibits it.
func circularAliasScenario(name string) Scenario {
	return Scenario{
		Name:     name,
		RaceFix:  true,
		Relaxed:  true,
		Circular: true,
		Capacity: 2,
		Owner: []Op{
			Push(1), UpdatePublicBottom(), UpdatePublicBottom(),
			Push(2), UpdatePublicBottom(), UpdatePublicBottom(),
			Push(3), DrainBatch(),
		},
		Thieves:       2,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		RequireDrain:  true,
	}
}

// TestCircularRelaxedStampValidationClean is the positive result the
// reviewer's mask-aliasing counterexample demands: on the circular
// array model — where a push one capacity ahead physically overwrites a
// dead slot — the relaxed claim path with stamp validation never
// returns an aliased task, never loses a task, and keeps the
// multiplicity bound, across every interleaving (including the
// schedules where the full window forces a mid-push grow+rehash).
func TestCircularRelaxedStampValidationClean(t *testing.T) {
	r := mustClean(t, circularAliasScenario("circular-relaxed-stamp-clean"))
	if r.States == 0 {
		t.Fatal("no states explored")
	}
}

// TestCircularNoStampCheckStaleSlotRead is the matching negative: the
// SAME scenario with the stamp validation ablated must exhibit a
// relaxed commit of an aliased slot read — the thief stalled between
// its publicBot check and its slot read returns the task pushed a full
// capacity later. This is the double-execute / use-after-recycle
// hazard upstream: the returned task's descriptor was never exposed at
// the claimed index, so the scheduler-side recycling gate would have
// been bypassed without the stamp.
func TestCircularNoStampCheckStaleSlotRead(t *testing.T) {
	sc := circularAliasScenario("circular-no-stamp-check-stale-read")
	sc.RelaxedNoStampCheck = true
	r := Check(sc)
	logReport(t, r)
	if r.Truncated {
		t.Fatalf("exploration truncated at %d states", r.States)
	}
	var stale *Violation
	for i := range r.Violations {
		if r.Violations[i].Kind == StaleSlotRead {
			stale = &r.Violations[i]
			break
		}
	}
	if stale == nil {
		t.Fatalf("model checker failed to exhibit the aliased slot read without the stamp check; found %v", r.Violations)
	}
	trace := strings.Join(stale.Trace, "\n")
	if !strings.Contains(trace, "STALE task 3") {
		t.Errorf("counterexample does not commit the aliasing push's task:\n%s", trace)
	}
	t.Logf("counterexample (%d steps):\n  %s", len(stale.Trace), strings.Join(stale.Trace, "\n  "))
}

// TestCircularExclusiveStealsClean checks the claim the review's
// analysis rests on — "the exclusive PopTop path is immune because its
// age CAS invalidates stale reads": the same sliding-window script on
// the circular model with plain CAS thieves and the Listing 1 drain is
// clean with no stamp machinery at all. Overwriting a claimed slot
// requires advancing top past the claim, so an unchanged age word
// proves the slot read was fresh.
func TestCircularExclusiveStealsClean(t *testing.T) {
	mustClean(t, Scenario{
		Name:     "circular-exclusive-steals-clean",
		RaceFix:  true,
		Circular: true,
		Capacity: 2,
		Owner: []Op{
			Push(1), UpdatePublicBottom(), UpdatePublicBottom(),
			Push(2), UpdatePublicBottom(), UpdatePublicBottom(),
			Push(3), Drain(),
		},
		Thieves:       2,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		RequireDrain:  true,
	})
}

// TestCircularGrowRehashClean drives the explicit growth op on the
// circular model, where — unlike the absolute-index model — the
// doubled generation's re-masked copy IS observable: the live window
// is rehashed into the new physical layout in the publishing step, and
// relaxed thieves holding pre-growth claims must still never return an
// aliased or lost task.
func TestCircularGrowRehashClean(t *testing.T) {
	mustClean(t, Scenario{
		Name:     "circular-grow-rehash-clean",
		RaceFix:  true,
		Relaxed:  true,
		Circular: true,
		Capacity: 2,
		Owner: []Op{
			Push(1), Push(2), UpdatePublicBottom(), Grow(),
			Push(3), UpdatePublicBottom(), DrainBatch(),
		},
		Thieves:       1,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		RequireDrain:  true,
	})
}

// TestRelaxedLostTaskOracleLive keeps the no-lost-task oracle honest in
// relaxed mode: an undrained relaxed scenario must be reported.
func TestRelaxedLostTaskOracleLive(t *testing.T) {
	r := Check(Scenario{
		Name:          "relaxed-undrained",
		RaceFix:       true,
		Relaxed:       true,
		Owner:         []Op{Push(1), UpdatePublicBottom()},
		Thieves:       1,
		StealAttempts: 1,
		Expose:        deque.ExposeOne,
		RequireDrain:  true,
	})
	logReport(t, r)
	if kinds(r)[LostTask] == 0 {
		t.Fatalf("expected a lost-task violation, got %v", r.Violations)
	}
}
