package verify

import (
	"strings"
	"testing"

	"lcws/internal/deque"
)

func kinds(r Report) map[ViolationKind]int {
	m := map[ViolationKind]int{}
	for _, v := range r.Violations {
		m[v.Kind]++
	}
	return m
}

func logReport(t *testing.T, r Report) {
	t.Helper()
	t.Logf("%s: %d states, %d transitions, %d violations, truncated=%v",
		r.Scenario.Name, r.States, r.Transitions, len(r.Violations), r.Truncated)
	for _, v := range r.Violations {
		t.Logf("  %v", v)
	}
}

func mustClean(t *testing.T, sc Scenario) Report {
	t.Helper()
	r := Check(sc)
	logReport(t, r)
	if r.Truncated {
		t.Fatalf("%s: exploration truncated at %d states", sc.Name, r.States)
	}
	if len(r.Violations) > 0 {
		v := r.Violations[0]
		t.Fatalf("%s: unexpected violation %v\ntrace:\n  %s",
			sc.Name, v, strings.Join(v.Trace, "\n  "))
	}
	return r
}

// TestRaceFixSafeUnderMidPopExposure is the §4 positive result: with the
// signal-safe pop_bottom, an exposure request delivered at ANY
// instruction boundary — including in the middle of pop_bottom — can
// never cause a task to be both popped by the owner and stolen.
// The scenario starts with the signal already pending, so the explorer
// delivers it at every possible boundary of the pop.
func TestRaceFixSafeUnderMidPopExposure(t *testing.T) {
	r := mustClean(t, Scenario{
		Name:          "racefix-mid-pop-exposure",
		RaceFix:       true,
		Owner:         []Op{Push(1), Pop(), Drain()},
		Thieves:       1,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		InitialSignal: true,
		SignalBudget:  1,
		RequireDrain:  true,
	})
	if r.States == 0 {
		t.Fatal("explorer visited no states")
	}
}

// TestOriginalPopBottomRaceReproduced is the §4 negative result: with
// the ORIGINAL Listing 2 pop_bottom and an exposure request landing
// between its comparison and its decrement of bot, the bottom-most task
// can be returned to the owner and simultaneously stolen by a thief.
// The model checker must find a duplicated task (and the broken
// publicBot > bot index state it leaves behind).
func TestOriginalPopBottomRaceReproduced(t *testing.T) {
	r := Check(Scenario{
		Name:          "original-pop-bottom-race",
		RaceFix:       false,
		Owner:         []Op{Push(1), Pop()},
		Thieves:       1,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		InitialSignal: true,
		SignalBudget:  1,
	})
	logReport(t, r)
	if r.Truncated {
		t.Fatalf("exploration truncated at %d states", r.States)
	}
	k := kinds(r)
	if k[DuplicateTask] == 0 {
		t.Fatalf("model checker failed to reproduce the §4 duplicate-task race; found %v", r.Violations)
	}
	if k[IndexInvariant] == 0 {
		t.Errorf("expected the race to also surface as a publicBot > bot index violation; found %v", r.Violations)
	}
	// The counterexample trace must show the exposure landing mid-pop.
	var dup Violation
	for _, v := range r.Violations {
		if v.Kind == DuplicateTask {
			dup = v
			break
		}
	}
	trace := strings.Join(dup.Trace, "\n")
	if !strings.Contains(trace, "exposure signal delivered") {
		t.Errorf("duplicate-task trace does not include a signal delivery:\n%s", trace)
	}
	t.Logf("counterexample (%d steps):\n  %s", len(dup.Trace), strings.Join(dup.Trace, "\n  "))
}

// TestConservativeExposureSafeWithOriginalPopBottom checks §4.1.1: the
// Conservative Exposure policy never exposes the bottom-most task, so
// the ORIGINAL pop_bottom is race-free under it even with signals
// landing mid-operation.
func TestConservativeExposureSafeWithOriginalPopBottom(t *testing.T) {
	mustClean(t, Scenario{
		Name:          "conservative-exposure-original-pop",
		RaceFix:       false,
		Owner:         []Op{Push(1), Push(2), Drain()},
		Thieves:       1,
		StealAttempts: 3,
		Expose:        deque.ExposeConservative,
		AutoSignal:    true,
		SignalBudget:  2,
		RequireDrain:  true,
	})
}

// TestSignalLCWSDrains exercises the full signal protocol on the
// race-fix deque: thieves notify on PRIVATE_WORK, the handler exposes
// one task at a time, and every task is consumed exactly once.
func TestSignalLCWSDrains(t *testing.T) {
	mustClean(t, Scenario{
		Name:          "signal-lcws-drains",
		RaceFix:       true,
		Owner:         []Op{Push(1), Push(2), Push(3), Drain()},
		Thieves:       1,
		StealAttempts: 3,
		Expose:        deque.ExposeOne,
		AutoSignal:    true,
		SignalBudget:  2,
		RequireDrain:  true,
	})
}

// TestExposeHalfTwoThieves checks the §4.1.2 Expose Half policy with
// two concurrent thieves against the race-fix pop_bottom.
func TestExposeHalfTwoThieves(t *testing.T) {
	mustClean(t, Scenario{
		Name:          "expose-half-two-thieves",
		RaceFix:       true,
		Owner:         []Op{Push(1), Push(2), Push(3), Drain()},
		Thieves:       2,
		StealAttempts: 2,
		Expose:        deque.ExposeHalf,
		AutoSignal:    true,
		SignalBudget:  2,
		RequireDrain:  true,
	})
}

// TestScriptedUpdatePublicBottom drives exposure synchronously through
// the op DSL (no signals): the owner exposes, thieves race the owner's
// drain for the public tasks.
func TestScriptedUpdatePublicBottom(t *testing.T) {
	mustClean(t, Scenario{
		Name:          "scripted-update-public-bottom",
		RaceFix:       true,
		Owner:         []Op{Push(1), Push(2), UpdatePublicBottom(), Drain()},
		Thieves:       2,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		RequireDrain:  true,
	})
}

// TestSequentialOwnerOnly checks the DSL on a thief-free scenario: all
// five op kinds in a deterministic order.
func TestSequentialOwnerOnly(t *testing.T) {
	r := mustClean(t, Scenario{
		Name:         "sequential-owner-only",
		RaceFix:      true,
		Owner:        []Op{Push(1), Pop(), Push(2), Push(3), UpdatePublicBottom(), Drain()},
		Expose:       deque.ExposeOne,
		RequireDrain: true,
	})
	// A single-threaded scenario has exactly one schedule: the state
	// count equals the transition count plus the initial state.
	if r.Transitions+1 != r.States {
		t.Errorf("sequential scenario explored %d states over %d transitions; want a single linear schedule",
			r.States, r.Transitions)
	}
}

// TestLostTaskDetectorFires proves the no-lost-task oracle is live: a
// scenario that terminates without draining must be reported.
func TestLostTaskDetectorFires(t *testing.T) {
	r := Check(Scenario{
		Name:         "undrained-scenario",
		RaceFix:      true,
		Owner:        []Op{Push(1)},
		RequireDrain: true,
	})
	logReport(t, r)
	if kinds(r)[LostTask] == 0 {
		t.Fatalf("expected a lost-task violation, got %v", r.Violations)
	}
}

// TestTruncationReported checks the MaxStates bound is honoured and
// reported rather than silently passing.
func TestTruncationReported(t *testing.T) {
	r := Check(Scenario{
		Name:          "truncated",
		RaceFix:       true,
		Owner:         []Op{Push(1), Push(2), Push(3), Drain()},
		Thieves:       2,
		StealAttempts: 3,
		Expose:        deque.ExposeHalf,
		AutoSignal:    true,
		SignalBudget:  3,
		RequireDrain:  true,
		MaxStates:     50,
	})
	if !r.Truncated {
		t.Fatalf("expected truncation at 50 states, explored %d", r.States)
	}
	if r.Clean() {
		t.Fatal("truncated report must not be Clean")
	}
}

// TestDeterminism: two runs of the same scenario must visit identical
// state and transition counts (the explorer is deterministic, which
// keeps CI reproducible).
func TestDeterminism(t *testing.T) {
	sc := Scenario{
		Name:          "determinism",
		RaceFix:       true,
		Owner:         []Op{Push(1), Push(2), Drain()},
		Thieves:       2,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		AutoSignal:    true,
		SignalBudget:  1,
		RequireDrain:  true,
	}
	a, b := Check(sc), Check(sc)
	if a.States != b.States || a.Transitions != b.Transitions {
		t.Fatalf("non-deterministic exploration: (%d,%d) vs (%d,%d)",
			a.States, a.Transitions, b.States, b.Transitions)
	}
}

// TestOpStrings pins the DSL's rendering, which appears in
// counterexample traces.
func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		Push(3):              "push(3)",
		Pop():                "pop_bottom",
		PopPublic():          "pop_public_bottom",
		UpdatePublicBottom(): "update_public_bottom",
		Drain():              "drain",
		UnexposeAll():        "unexpose_all",
		DrainBatch():         "drain_batch",
		{Kind: OpPopTop}:     "pop_top",
	} {
		if got := op.String(); got != want {
			t.Errorf("op %v String = %q, want %q", op.Kind, got, want)
		}
	}
}

// TestBatchDrainSequential checks the batch-mode owner ops on a
// thief-free scenario: exposure, the UnexposeAll reclaim, and the
// DrainBatch loop, which must empty the deque without ever running
// pop_public_bottom.
func TestBatchDrainSequential(t *testing.T) {
	r := mustClean(t, Scenario{
		Name:         "batch-drain-sequential",
		RaceFix:      true,
		Owner:        []Op{Push(1), Push(2), UpdatePublicBottom(), DrainBatch()},
		Expose:       deque.ExposeOne,
		RequireDrain: true,
	})
	if r.Transitions+1 != r.States {
		t.Errorf("sequential scenario explored %d states over %d transitions; want a single linear schedule",
			r.States, r.Transitions)
	}
}

// TestStealHalfBatchDrainSafe is the tentpole positive result: batched
// PopTopHalf thieves racing an owner that follows the batch discipline
// (pop_bottom + UnexposeAll, never pop_public_bottom) — with exposure
// signals landing at every possible micro-step boundary, including in
// the middle of pop_bottom and UnexposeAll — never duplicate or lose a
// task.
func TestStealHalfBatchDrainSafe(t *testing.T) {
	mustClean(t, Scenario{
		Name:          "stealhalf-batch-drain",
		RaceFix:       true,
		Owner:         []Op{Push(1), Push(2), Push(3), Push(4), DrainBatch()},
		Thieves:       2,
		StealAttempts: 2,
		StealHalf:     true,
		BatchBuf:      4,
		Expose:        deque.ExposeHalf,
		AutoSignal:    true,
		SignalBudget:  2,
		RequireDrain:  true,
	})
}

// TestStealHalfRaceFixMidPopExposure extends the §4 positive result to
// batch mode: with the signal-safe pop_bottom, an exposure delivered at
// ANY boundary — including mid-pop — is safe against batched PopTopHalf
// thieves, and the UnexposeAll reclaim repairs the race-fix bot
// decrement on every path.
func TestStealHalfRaceFixMidPopExposure(t *testing.T) {
	mustClean(t, Scenario{
		Name:          "stealhalf-racefix-mid-pop-exposure",
		RaceFix:       true,
		Owner:         []Op{Push(1), Pop(), DrainBatch()},
		Thieves:       1,
		StealAttempts: 2,
		StealHalf:     true,
		Expose:        deque.ExposeOne,
		InitialSignal: true,
		SignalBudget:  1,
		RequireDrain:  true,
	})
}

// TestStealHalfOriginalPopBottomRaceReproduced: the §4 race does not go
// away in batch mode — with the ORIGINAL pop_bottom, an exposure landing
// mid-pop still lets a PopTopHalf thief and the owner return the same
// task.
func TestStealHalfOriginalPopBottomRaceReproduced(t *testing.T) {
	r := Check(Scenario{
		Name:          "stealhalf-original-pop-bottom-race",
		RaceFix:       false,
		Owner:         []Op{Push(1), Pop()},
		Thieves:       1,
		StealAttempts: 2,
		StealHalf:     true,
		Expose:        deque.ExposeOne,
		InitialSignal: true,
		SignalBudget:  1,
	})
	logReport(t, r)
	if r.Truncated {
		t.Fatalf("exploration truncated at %d states", r.States)
	}
	if kinds(r)[DuplicateTask] == 0 {
		t.Fatalf("model checker failed to reproduce the §4 duplicate-task race under StealHalf; found %v", r.Violations)
	}
}

// TestPopTopHalfVsPopPublicBottomUnsound is the negative result that
// justifies the batch owner discipline: a batched steal claiming n >= 2
// tasks raced against PopPublicBottom's common path MUST duplicate a
// task. The owner's plain-take of indices above top never touches the
// age word, so a thief that read its slots before the owner's pops still
// wins its CAS and re-claims owner-consumed tasks. This is why batch-mode
// owners reclaim exclusively through UnexposeAll (whose tag bump makes
// the stalled thief's CAS fail) and never call PopPublicBottom.
func TestPopTopHalfVsPopPublicBottomUnsound(t *testing.T) {
	r := Check(Scenario{
		Name:    "pop-top-half-vs-pop-public-bottom",
		RaceFix: true,
		// Expose 3 of 5 tasks, drain the private part, then pop the
		// public part bottom-up — the LCWS (non-batch) owner discipline.
		Owner: []Op{
			Push(1), Push(2), Push(3), Push(4), Push(5),
			UpdatePublicBottom(),
			Pop(), Pop(), Pop(),
			PopPublic(), PopPublic(), PopPublic(),
		},
		Thieves:       1,
		StealAttempts: 1,
		StealHalf:     true,
		BatchBuf:      4,
		Expose:        deque.ExposeHalf,
	})
	logReport(t, r)
	if r.Truncated {
		t.Fatalf("exploration truncated at %d states", r.States)
	}
	var dup *Violation
	for i := range r.Violations {
		if r.Violations[i].Kind == DuplicateTask {
			dup = &r.Violations[i]
			break
		}
	}
	if dup == nil {
		t.Fatalf("model checker failed to show PopTopHalf x PopPublicBottom duplicates tasks; found %v", r.Violations)
	}
	trace := strings.Join(dup.Trace, "\n")
	if !strings.Contains(trace, "pop_top_half CAS age ok") || !strings.Contains(trace, "pop_public_bottom") {
		t.Errorf("counterexample does not show the batch CAS racing pop_public_bottom:\n%s", trace)
	}
	t.Logf("counterexample (%d steps):\n  %s", len(dup.Trace), strings.Join(dup.Trace, "\n  "))
}

// TestStealHalfSingleClaimIsSafeAgainstPopPublicBottom is the control
// for the negative test above: with only ONE public task the batched
// steal degenerates to a single claim of index top, which is exactly the
// case PopPublicBottom's emptying-path CAS defends against — so the same
// owner script with one exposed task must be clean.
func TestStealHalfSingleClaimIsSafeAgainstPopPublicBottom(t *testing.T) {
	mustClean(t, Scenario{
		Name:    "stealhalf-single-claim-vs-pop-public-bottom",
		RaceFix: true,
		Owner: []Op{
			Push(1), Push(2),
			UpdatePublicBottom(), // exposes 1 (ExposeOne)
			Pop(), Pop(),
			PopPublic(),
		},
		Thieves:       1,
		StealAttempts: 1,
		StealHalf:     true,
		Expose:        deque.ExposeOne,
	})
}

// TestStealHalfUnexposeAllRace pits the UnexposeAll reclaim directly
// against in-flight batched steals (no signals, scripted exposure): the
// tag bump must make exactly one side win each slot.
func TestStealHalfUnexposeAllRace(t *testing.T) {
	mustClean(t, Scenario{
		Name:    "stealhalf-unexpose-race",
		RaceFix: true,
		Owner: []Op{
			Push(1), Push(2), Push(3), Push(4),
			UpdatePublicBottom(), // exposes 2 of 4 (ExposeHalf)
			DrainBatch(),
		},
		Thieves:       2,
		StealAttempts: 2,
		StealHalf:     true,
		BatchBuf:      4,
		Expose:        deque.ExposeHalf,
		RequireDrain:  true,
	})
}
