package verify

import (
	"strings"
	"testing"

	"lcws/internal/deque"
)

func kinds(r Report) map[ViolationKind]int {
	m := map[ViolationKind]int{}
	for _, v := range r.Violations {
		m[v.Kind]++
	}
	return m
}

func logReport(t *testing.T, r Report) {
	t.Helper()
	t.Logf("%s: %d states, %d transitions, %d violations, truncated=%v",
		r.Scenario.Name, r.States, r.Transitions, len(r.Violations), r.Truncated)
	for _, v := range r.Violations {
		t.Logf("  %v", v)
	}
}

func mustClean(t *testing.T, sc Scenario) Report {
	t.Helper()
	r := Check(sc)
	logReport(t, r)
	if r.Truncated {
		t.Fatalf("%s: exploration truncated at %d states", sc.Name, r.States)
	}
	if len(r.Violations) > 0 {
		v := r.Violations[0]
		t.Fatalf("%s: unexpected violation %v\ntrace:\n  %s",
			sc.Name, v, strings.Join(v.Trace, "\n  "))
	}
	return r
}

// TestRaceFixSafeUnderMidPopExposure is the §4 positive result: with the
// signal-safe pop_bottom, an exposure request delivered at ANY
// instruction boundary — including in the middle of pop_bottom — can
// never cause a task to be both popped by the owner and stolen.
// The scenario starts with the signal already pending, so the explorer
// delivers it at every possible boundary of the pop.
func TestRaceFixSafeUnderMidPopExposure(t *testing.T) {
	r := mustClean(t, Scenario{
		Name:          "racefix-mid-pop-exposure",
		RaceFix:       true,
		Owner:         []Op{Push(1), Pop(), Drain()},
		Thieves:       1,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		InitialSignal: true,
		SignalBudget:  1,
		RequireDrain:  true,
	})
	if r.States == 0 {
		t.Fatal("explorer visited no states")
	}
}

// TestOriginalPopBottomRaceReproduced is the §4 negative result: with
// the ORIGINAL Listing 2 pop_bottom and an exposure request landing
// between its comparison and its decrement of bot, the bottom-most task
// can be returned to the owner and simultaneously stolen by a thief.
// The model checker must find a duplicated task (and the broken
// publicBot > bot index state it leaves behind).
func TestOriginalPopBottomRaceReproduced(t *testing.T) {
	r := Check(Scenario{
		Name:          "original-pop-bottom-race",
		RaceFix:       false,
		Owner:         []Op{Push(1), Pop()},
		Thieves:       1,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		InitialSignal: true,
		SignalBudget:  1,
	})
	logReport(t, r)
	if r.Truncated {
		t.Fatalf("exploration truncated at %d states", r.States)
	}
	k := kinds(r)
	if k[DuplicateTask] == 0 {
		t.Fatalf("model checker failed to reproduce the §4 duplicate-task race; found %v", r.Violations)
	}
	if k[IndexInvariant] == 0 {
		t.Errorf("expected the race to also surface as a publicBot > bot index violation; found %v", r.Violations)
	}
	// The counterexample trace must show the exposure landing mid-pop.
	var dup Violation
	for _, v := range r.Violations {
		if v.Kind == DuplicateTask {
			dup = v
			break
		}
	}
	trace := strings.Join(dup.Trace, "\n")
	if !strings.Contains(trace, "exposure signal delivered") {
		t.Errorf("duplicate-task trace does not include a signal delivery:\n%s", trace)
	}
	t.Logf("counterexample (%d steps):\n  %s", len(dup.Trace), strings.Join(dup.Trace, "\n  "))
}

// TestConservativeExposureSafeWithOriginalPopBottom checks §4.1.1: the
// Conservative Exposure policy never exposes the bottom-most task, so
// the ORIGINAL pop_bottom is race-free under it even with signals
// landing mid-operation.
func TestConservativeExposureSafeWithOriginalPopBottom(t *testing.T) {
	mustClean(t, Scenario{
		Name:          "conservative-exposure-original-pop",
		RaceFix:       false,
		Owner:         []Op{Push(1), Push(2), Drain()},
		Thieves:       1,
		StealAttempts: 3,
		Expose:        deque.ExposeConservative,
		AutoSignal:    true,
		SignalBudget:  2,
		RequireDrain:  true,
	})
}

// TestSignalLCWSDrains exercises the full signal protocol on the
// race-fix deque: thieves notify on PRIVATE_WORK, the handler exposes
// one task at a time, and every task is consumed exactly once.
func TestSignalLCWSDrains(t *testing.T) {
	mustClean(t, Scenario{
		Name:          "signal-lcws-drains",
		RaceFix:       true,
		Owner:         []Op{Push(1), Push(2), Push(3), Drain()},
		Thieves:       1,
		StealAttempts: 3,
		Expose:        deque.ExposeOne,
		AutoSignal:    true,
		SignalBudget:  2,
		RequireDrain:  true,
	})
}

// TestExposeHalfTwoThieves checks the §4.1.2 Expose Half policy with
// two concurrent thieves against the race-fix pop_bottom.
func TestExposeHalfTwoThieves(t *testing.T) {
	mustClean(t, Scenario{
		Name:          "expose-half-two-thieves",
		RaceFix:       true,
		Owner:         []Op{Push(1), Push(2), Push(3), Drain()},
		Thieves:       2,
		StealAttempts: 2,
		Expose:        deque.ExposeHalf,
		AutoSignal:    true,
		SignalBudget:  2,
		RequireDrain:  true,
	})
}

// TestScriptedUpdatePublicBottom drives exposure synchronously through
// the op DSL (no signals): the owner exposes, thieves race the owner's
// drain for the public tasks.
func TestScriptedUpdatePublicBottom(t *testing.T) {
	mustClean(t, Scenario{
		Name:          "scripted-update-public-bottom",
		RaceFix:       true,
		Owner:         []Op{Push(1), Push(2), UpdatePublicBottom(), Drain()},
		Thieves:       2,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		RequireDrain:  true,
	})
}

// TestSequentialOwnerOnly checks the DSL on a thief-free scenario: all
// five op kinds in a deterministic order.
func TestSequentialOwnerOnly(t *testing.T) {
	r := mustClean(t, Scenario{
		Name:         "sequential-owner-only",
		RaceFix:      true,
		Owner:        []Op{Push(1), Pop(), Push(2), Push(3), UpdatePublicBottom(), Drain()},
		Expose:       deque.ExposeOne,
		RequireDrain: true,
	})
	// A single-threaded scenario has exactly one schedule: the state
	// count equals the transition count plus the initial state.
	if r.Transitions+1 != r.States {
		t.Errorf("sequential scenario explored %d states over %d transitions; want a single linear schedule",
			r.States, r.Transitions)
	}
}

// TestLostTaskDetectorFires proves the no-lost-task oracle is live: a
// scenario that terminates without draining must be reported.
func TestLostTaskDetectorFires(t *testing.T) {
	r := Check(Scenario{
		Name:         "undrained-scenario",
		RaceFix:      true,
		Owner:        []Op{Push(1)},
		RequireDrain: true,
	})
	logReport(t, r)
	if kinds(r)[LostTask] == 0 {
		t.Fatalf("expected a lost-task violation, got %v", r.Violations)
	}
}

// TestTruncationReported checks the MaxStates bound is honoured and
// reported rather than silently passing.
func TestTruncationReported(t *testing.T) {
	r := Check(Scenario{
		Name:          "truncated",
		RaceFix:       true,
		Owner:         []Op{Push(1), Push(2), Push(3), Drain()},
		Thieves:       2,
		StealAttempts: 3,
		Expose:        deque.ExposeHalf,
		AutoSignal:    true,
		SignalBudget:  3,
		RequireDrain:  true,
		MaxStates:     50,
	})
	if !r.Truncated {
		t.Fatalf("expected truncation at 50 states, explored %d", r.States)
	}
	if r.Clean() {
		t.Fatal("truncated report must not be Clean")
	}
}

// TestDeterminism: two runs of the same scenario must visit identical
// state and transition counts (the explorer is deterministic, which
// keeps CI reproducible).
func TestDeterminism(t *testing.T) {
	sc := Scenario{
		Name:          "determinism",
		RaceFix:       true,
		Owner:         []Op{Push(1), Push(2), Drain()},
		Thieves:       2,
		StealAttempts: 2,
		Expose:        deque.ExposeOne,
		AutoSignal:    true,
		SignalBudget:  1,
		RequireDrain:  true,
	}
	a, b := Check(sc), Check(sc)
	if a.States != b.States || a.Transitions != b.Transitions {
		t.Fatalf("non-deterministic exploration: (%d,%d) vs (%d,%d)",
			a.States, a.Transitions, b.States, b.Transitions)
	}
}

// TestOpStrings pins the DSL's rendering, which appears in
// counterexample traces.
func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		Push(3):               "push(3)",
		Pop():                 "pop_bottom",
		PopPublic():           "pop_public_bottom",
		UpdatePublicBottom():  "update_public_bottom",
		Drain():               "drain",
		{Kind: OpPopTop}:      "pop_top",
	} {
		if got := op.String(); got != want {
			t.Errorf("op %v String = %q, want %q", op.Kind, got, want)
		}
	}
}
