// Package verify is a bounded model checker for the LCWS split deque
// (internal/deque.SplitDeque, Listing 2 of the paper plus the §4
// signal-safe pop_bottom variant).
//
// The Go implementation cannot be model-checked directly — goroutine
// preemption points are not addressable — so this package re-expresses
// the algorithm as a deterministic step-VM: every deque operation is
// compiled to the sequence of shared-memory micro-steps (individual
// atomic loads, stores and CASes of bot, publicBot, the age word and the
// task slots) that the Go code executes, at the granularity at which the
// hardware may interleave them. A scenario places one owner thread
// running a script of operations from the op DSL (PushBottom, PopBottom,
// PopPublicBottom, UpdatePublicBottom/Expose, Drain) next to a bounded
// number of thief threads running PopTop attempts, and the explorer
// enumerates every reachable interleaving, including an emulated
// exposure signal landing between any two micro-steps of the owner —
// the exact window of the §4 pop_bottom race.
//
// The batched steal-side mode (Options.StealBatch) is modelled too:
// Scenario.StealHalf makes the thieves run PopTopHalf attempts (a batch
// claim of up to half the public part under one CAS), and the owner DSL
// gains UnexposeAll plus the DrainBatch composite (pop_bottom until nil,
// then reclaim the public part wholesale via UnexposeAll — the batch
// owner discipline, which never calls PopPublicBottom). A negative test
// demonstrates WHY that discipline exists: PopTopHalf raced against
// PopPublicBottom's common path duplicates tasks, because the owner's
// plain-take of indices above top leaves the age word untouched and a
// stalled thief's batch CAS still succeeds.
//
// The MultFree relaxed-claim protocol (Scenario.Relaxed) is modelled at
// the same granularity: thieves claim idempotent tasks with a plain
// store to the relNext cursor (no fence, no CAS on the steal side),
// falling back to the exclusive age CAS for pinned (non-idempotent)
// tasks, and the owner's expose/reclaim ops run the repairRelaxed
// cursor fold first. The duplicate-return oracle becomes a
// multiplicity-bound oracle: idempotent tasks may be returned up to
// Thieves+1 times (once per thief — enforced by each thief's private
// monotone claim memory, which never re-claims an index because a
// relaxed deque's absolute indices never reset — plus at most one owner
// re-execution absorbed upstream by the scheduler's generation-stamp
// arbitration), while pinned tasks keep the exactly-once rule. Two
// ablation knobs carry the negative results: RelaxedNoRepair disables
// the owner fold and RelaxedNoClaimMemory makes thieves stateless
// cursor readers (the "fresh thief per epoch" adversary); with the
// repair ablated, every unexpose/re-expose epoch re-offers
// already-claimed tasks and the checker exhibits multiplicity beyond
// the bound — the counterexample that justifies the owner-side repair.
//
// The backing array's circularity (Scenario.Circular) is modelled on
// demand: slot accesses index the task array modulo the current
// capacity instead of absolutely, so a push whose absolute index is one
// capacity ahead of a dead index physically overwrites that slot —
// the mask-aliasing hazard of a real circular buffer. Each task carries
// the absolute index it was pushed at (the model of the descriptor's
// push stamp, which travels WITH the task and is read atomically with
// it), and the relaxed claim path validates the stamp of the task it
// read against its claim index, aborting on mismatch exactly as
// deque.TakeTopRelaxed does — unless the claim is the authoritative
// top, where the exclusive age CAS retroactively validates the read.
// The RelaxedNoStampCheck ablation removes the validation and the
// StaleSlotRead oracle then exhibits the counterexample: a thief
// stalled between its publicBot check and its slot read returns a
// task the owner pushed a full capacity later — a private, never
// exposed task. Growth under Circular rehashes the live window into
// the doubled physical layout in the publishing step (the model has a
// single array, so a superseded generation's contents are dropped;
// a stale read of a dead slot surfaces as an empty read and aborts,
// which is the same decision the stamp check forces in the
// implementation).
//
// Exploration is a stateful depth-first search: states are canonicalized
// (identical thief threads are sorted, making the search symmetric in
// thief identity) and memoized, and deterministic local computation is
// folded into the adjacent shared access, so only schedules that differ
// in the order of conflicting shared accesses are explored separately —
// the same reduction family (independence + symmetry) that DPOR-style
// checkers exploit. On the bounds used by the tests the full state space
// is a few thousand to a few hundred thousand states and explores in
// well under a second.
//
// Checked properties:
//
//   - No duplicated task: every task id is returned at most once across
//     owner pops and successful steals (set-linearizability of the
//     multiset of returns — the correctness criterion used for
//     work-stealing deques, cf. Chase–Lev and Sundell & Tsigas).
//   - No lost task: at every terminal state of a draining scenario,
//     every pushed task was returned exactly once.
//   - No fabricated task: a pop or steal never observes an empty slot
//     where the algorithm promised a task.
//   - Index invariant top <= publicBot <= bot at every quiescent state
//     (all threads between operations, no handler running), modulo the
//     documented §4 exception: after the race-fix PopBottom returns nil
//     it may leave bot == publicBot-1 until the next PopPublicBottom or
//     UnexposeAll repairs it.
//
// The package's tests double as the CI wiring: `go test ./internal/verify`
// (part of tier-1 `go test ./...`) re-checks every scenario, including a
// negative test that must reproduce the §4 exposure-mid-PopBottom race
// when the race fix is disabled.
package verify

import (
	"fmt"

	"lcws/internal/deque"
)

// Scenario is one bounded model-checking problem: an owner script, a
// number of identical thief threads, and the exposure-signal regime.
type Scenario struct {
	// Name labels reports and test output.
	Name string
	// RaceFix selects the §4 signal-safe PopBottom variant, exactly as
	// deque.NewSplit's raceFix parameter does.
	RaceFix bool
	// Capacity is the initial number of task slots (default 8, max 16).
	// Grow ops in the owner script double it; the initial capacity times
	// 2^(number of grow ops) must stay within the modelled maximum 16.
	Capacity int
	// Owner is the owner thread's operation script.
	Owner []Op
	// Thieves is the number of concurrent thief threads (each a separate
	// "processor"; they are symmetric and the explorer exploits that).
	Thieves int
	// StealAttempts is the number of PopTop attempts each thief makes.
	StealAttempts int
	// StealHalf makes the thieves run PopTopHalf attempts instead of
	// PopTop: each attempt tries to claim up to half of the public part
	// (capped at BatchBuf) with a single CAS, the batched steal mode of
	// Options.StealBatch.
	StealHalf bool
	// BatchBuf is the thief's batch buffer length for StealHalf attempts
	// (default 4, max maxSlots).
	BatchBuf int
	// Expose is the exposure policy the signal handler runs
	// (update_public_bottom's mode).
	Expose deque.ExposeMode
	// AutoSignal raises an exposure request whenever a thief's PopTop
	// returns PRIVATE_WORK, mirroring the notify path of Listing 3.
	AutoSignal bool
	// InitialSignal starts the run with an exposure request already
	// pending, so the handler can fire before any thief observes the
	// deque.
	InitialSignal bool
	// SignalBudget bounds how many times the emulated signal handler may
	// be delivered (0 means no handler ever runs).
	SignalBudget int
	// RequireDrain asserts that every terminal state has returned every
	// pushed task: the scenario's owner script must end with Drain.
	RequireDrain bool
	// MaxStates aborts exploration (Report.Truncated) after this many
	// distinct states; 0 means DefaultMaxStates.
	MaxStates int

	// Relaxed makes the thieves run TakeTopRelaxed attempts — the
	// MultFree fence- and CAS-free claim protocol: claim = max(top,
	// tag-honored relNext cursor, the thief's private monotone memory),
	// validate against publicBot, read the slot, commit with a plain
	// cursor store. The duplicate-return oracle switches from
	// exactly-once to the multiplicity bound (see MultiplicityExceeded),
	// and the owner ops that expose or reclaim run the repairRelaxed
	// cursor fold first, exactly as deque.Expose/UnexposeAll do.
	// Relaxed scenarios must use RaceFix (MultFree implies the §4 pop)
	// and the batch owner discipline: OpDrain and OpPopPublicBottom are
	// rejected, mirroring the scheduler, whose MultFree owner reclaims
	// exclusively through tag-bumping UnexposeAll so that absolute deque
	// indices never reset (the monotone claim memory depends on it).
	Relaxed bool
	// Pinned is a bitmask of task ids the idempotence predicate rejects
	// (fn-task stand-ins): relaxed thieves fall back to the exclusive
	// CAS claim for them — legal only when the claim is the
	// authoritative top — and the oracle keeps the exactly-once rule
	// for them even in relaxed scenarios.
	Pinned uint16
	// RelaxedNoRepair ablates the owner-side repairRelaxed fold
	// (negative tests): reclaims and exposures no longer advance top
	// past honored claims, so every unexpose/re-expose epoch offers
	// already-claimed tasks again.
	RelaxedNoRepair bool
	// RelaxedNoClaimMemory ablates the thieves' private monotone claim
	// memory (negative tests): thieves become stateless cursor readers,
	// the model of "a fresh thief per epoch" — the adversary against
	// which the repair fold alone must carry the bound.
	RelaxedNoClaimMemory bool
	// Circular switches the modelled task array from absolute to
	// physical (index mod capacity) slot addressing, the layout of the
	// implementation's circular backing array: a push at absolute index
	// i overwrites the slot of absolute index i-capacity, so stale
	// thieves can observe mask aliasing. Pushes check their window
	// against the current top and grow (doubling with a rehash of the
	// live window) when it is full, as TryPushBottom does; the relaxed
	// claim path validates the push stamp of the task it read against
	// the claim index (see deque.TakeTopRelaxed) and the StaleSlotRead
	// oracle rejects any relaxed return whose stamp does not match.
	Circular bool
	// RelaxedNoStampCheck ablates the relaxed path's stamp validation
	// (negative tests; requires Circular): thieves commit whatever task
	// their slot read returned, and the StaleSlotRead oracle exhibits
	// the aliased read the validation exists to stop.
	RelaxedNoStampCheck bool
	// AtomicClaims restricts the adversary to synchronous thieves: each
	// relaxed steal attempt executes as ONE atomic step, scheduled only
	// at owner operation boundaries ("landed claims" — every claim is
	// fully visible before the owner's next op). Under this adversary
	// the repair fold alone guarantees exactly-once delivery even for
	// stateless thieves (RelaxedNoClaimMemory), which isolates exactly
	// what the repair contributes; ablating the repair under the same
	// adversary breaks the bound — the package's negative result
	// justifying the owner-side repair. The unrestricted adversary's
	// residue (claims suspended across owner reclaims) is what the
	// per-thief claim memory bounds at Thieves+1.
	AtomicClaims bool
}

// DefaultMaxStates bounds exploration when Scenario.MaxStates is zero.
const DefaultMaxStates = 4 << 20

// OpKind enumerates the operations of the model checker's DSL. The five
// public kinds correspond one-to-one to the operations of Listing 2;
// Drain is the composite owner loop of Listing 1 (pop_bottom until nil,
// then pop_public_bottom, repeating until the deque is empty).
type OpKind uint8

const (
	// OpPushBottom pushes task Arg (1-based id) onto the private part.
	OpPushBottom OpKind = iota
	// OpPopBottom pops the bottom-most private task.
	OpPopBottom
	// OpPopPublicBottom pops the bottom-most public task; in the
	// scheduler it is only legal directly after OpPopBottom returned
	// nil, and scripts must respect that.
	OpPopPublicBottom
	// OpPopTop is a steal attempt (thief threads run these implicitly).
	OpPopTop
	// OpUpdatePublicBottom runs the exposure routine synchronously on
	// the owner (the scripted form of the signal handler's body).
	OpUpdatePublicBottom
	// OpDrain runs the owner side of Listing 1 until the deque empties.
	OpDrain
	// OpUnexposeAll reclaims every unstolen public task back into the
	// private part (deque.UnexposeAll); like OpPopPublicBottom it is only
	// legal after OpPopBottom returned nil.
	OpUnexposeAll
	// OpDrainBatch runs the batch-mode owner drain: pop_bottom until
	// nil, then UnexposeAll, repeating until the reclaim finds nothing —
	// PopPublicBottom is never called (the batch owner discipline).
	OpDrainBatch
	// OpGrow doubles the task-array capacity the way TryPushBottom's
	// grow does: load the age word, then publish a doubled generation
	// whose live slots sit at unchanged absolute indices, in a single
	// store that touches neither the age word nor publicBot. The model
	// indexes slots absolutely, so the re-masked copy is a no-op on the
	// modelled array and the publish changes only the capacity bound of
	// the push window check — which is precisely the protocol's
	// soundness claim, checked here against every steal interleaving.
	OpGrow
	// OpGrowNaive is the deliberately unsound compacting growth used by
	// the negative tests: it moves live tasks down to index 0, rebases
	// publicBot and bot, and rewrites the age word to (0, tag) WITHOUT
	// bumping the tag. A thief holding a pre-growth age snapshot then
	// passes its CAS against a slot whose content was rewritten.
	OpGrowNaive
)

// Op is one scripted operation.
type Op struct {
	Kind OpKind
	Arg  uint8 // task id for OpPushBottom
}

// Push returns a PushBottom op for task id (1-based, <= 15).
func Push(id int) Op {
	if id <= 0 || id > maxTaskID {
		panic(fmt.Sprintf("verify: task id %d out of range [1,%d]", id, maxTaskID))
	}
	return Op{Kind: OpPushBottom, Arg: uint8(id)}
}

// Pin packs task ids into a Scenario.Pinned bitmask (tasks the
// idempotence predicate rejects — the model's fn-task stand-ins).
func Pin(ids ...int) uint16 {
	var m uint16
	for _, id := range ids {
		if id <= 0 || id > maxTaskID {
			panic(fmt.Sprintf("verify: task id %d out of range [1,%d]", id, maxTaskID))
		}
		m |= 1 << uint(id)
	}
	return m
}

// Pop returns a PopBottom op.
func Pop() Op { return Op{Kind: OpPopBottom} }

// PopPublic returns a PopPublicBottom op.
func PopPublic() Op { return Op{Kind: OpPopPublicBottom} }

// UpdatePublicBottom returns a scripted exposure op.
func UpdatePublicBottom() Op { return Op{Kind: OpUpdatePublicBottom} }

// Drain returns the composite drain-the-deque op.
func Drain() Op { return Op{Kind: OpDrain} }

// UnexposeAll returns a reclaim-the-public-part op.
func UnexposeAll() Op { return Op{Kind: OpUnexposeAll} }

// DrainBatch returns the composite batch-mode drain op (pop_bottom /
// UnexposeAll loop, never PopPublicBottom).
func DrainBatch() Op { return Op{Kind: OpDrainBatch} }

// Grow returns an index-preserving capacity-doubling op (the growth
// protocol of TryPushBottom).
func Grow() Op { return Op{Kind: OpGrow} }

// GrowNaive returns the unsound compacting growth op used by negative
// tests (rebases indices without bumping the ABA tag).
func GrowNaive() Op { return Op{Kind: OpGrowNaive} }

// String returns a compact rendering of the op.
func (o Op) String() string {
	switch o.Kind {
	case OpPushBottom:
		return fmt.Sprintf("push(%d)", o.Arg)
	case OpPopBottom:
		return "pop_bottom"
	case OpPopPublicBottom:
		return "pop_public_bottom"
	case OpPopTop:
		return "pop_top"
	case OpUpdatePublicBottom:
		return "update_public_bottom"
	case OpDrain:
		return "drain"
	case OpUnexposeAll:
		return "unexpose_all"
	case OpDrainBatch:
		return "drain_batch"
	case OpGrow:
		return "grow"
	case OpGrowNaive:
		return "grow_naive"
	default:
		return fmt.Sprintf("op(%d)", uint8(o.Kind))
	}
}

// ViolationKind classifies a property violation.
type ViolationKind uint8

const (
	// DuplicateTask means one task id was returned twice.
	DuplicateTask ViolationKind = iota
	// LostTask means a draining scenario terminated with a pushed task
	// never returned.
	LostTask
	// IndexInvariant means top <= publicBot <= bot failed at a quiescent
	// state (outside the documented race-fix repair window).
	IndexInvariant
	// SlotCorruption means an operation observed an empty slot where the
	// algorithm guarantees a task.
	SlotCorruption
	// MultiplicityExceeded means a relaxed scenario returned one task
	// more than Thieves+1 times — the MultFree bound (one return per
	// thief via the monotone claim memory, plus at most one absorbed
	// owner re-execution from the fence-free claim window).
	MultiplicityExceeded
	// StaleSlotRead means a relaxed claim committed a task whose push
	// stamp does not match the claim index (Circular scenarios): the
	// thief's slot read aliased onto a task pushed a whole capacity
	// later — possibly a private, never-exposed task. The stamp
	// validation of deque.TakeTopRelaxed exists to turn exactly this
	// into an abort; only the RelaxedNoStampCheck ablation reaches it.
	StaleSlotRead
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case DuplicateTask:
		return "duplicate-task"
	case LostTask:
		return "lost-task"
	case IndexInvariant:
		return "index-invariant"
	case SlotCorruption:
		return "slot-corruption"
	case MultiplicityExceeded:
		return "multiplicity-exceeded"
	case StaleSlotRead:
		return "stale-slot-read"
	default:
		return fmt.Sprintf("violation(%d)", uint8(k))
	}
}

// Violation is one counterexample found by the explorer.
type Violation struct {
	Kind ViolationKind
	// Detail describes the violated assertion in the failing state.
	Detail string
	// Trace is the full interleaving (one micro-step per line) leading
	// to the violation.
	Trace []string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (after %d steps)", v.Kind, v.Detail, len(v.Trace))
}

// Report is the result of exhaustively checking one scenario.
type Report struct {
	Scenario    Scenario
	States      int // distinct canonical states visited
	Transitions int // micro-steps executed
	Violations  []Violation
	// MaxMultiplicity is the largest per-task return count observed in
	// any violation-free reachable state. Relaxed positive tests use it
	// to show the multiplicity bound is tight: duplicates genuinely
	// occur (MaxMultiplicity > 1) yet never exceed Thieves+1.
	MaxMultiplicity int
	// Truncated is set when MaxStates stopped the search early; absence
	// of violations is then inconclusive.
	Truncated bool
}

// Clean reports whether the exhaustive search finished and found no
// violations.
func (r Report) Clean() bool { return !r.Truncated && len(r.Violations) == 0 }

// maxViolations bounds how many distinct counterexamples one Check run
// collects before stopping.
const maxViolations = 4

// maxTaskID is the largest task id the packed state encoding supports.
const maxTaskID = 15
