package verify

import "fmt"

// Check exhaustively explores every interleaving of the scenario and
// returns a report of all property violations found (up to a small
// cap). The search is a depth-first traversal of the transition system
// with canonical-state memoization: two schedules that reach the same
// shared-memory and thread state are explored once, and identical thief
// threads are treated as interchangeable, so only schedules that differ
// in the order of conflicting shared accesses contribute new states.
func Check(sc Scenario) Report {
	sc = normalize(sc)
	rep := Report{Scenario: sc}
	seen := make(map[string]struct{}, 1<<12)
	maxStates := sc.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}

	var path []string
	record := func(v *Violation) {
		trace := make([]string, len(path))
		copy(trace, path)
		v.Trace = trace
		rep.Violations = append(rep.Violations, *v)
	}

	var dfs func(s state)
	dfs = func(s state) {
		if rep.Truncated || len(rep.Violations) >= maxViolations {
			return
		}
		key := s.key()
		if _, ok := seen[key]; ok {
			return
		}
		if len(seen) >= maxStates {
			rep.Truncated = true
			return
		}
		seen[key] = struct{}{}
		for rc := s.retCounts; rc != 0; rc >>= 4 {
			if m := int(rc & 0xf); m > rep.MaxMultiplicity {
				rep.MaxMultiplicity = m
			}
		}
		if v := s.checkState(&sc); v != nil {
			record(v)
			return
		}
		if s.terminal(&sc) {
			return
		}
		for tid := 0; tid < int(s.nthreads); tid++ {
			if s.threadDone(&sc, tid) {
				continue
			}
			// The AtomicClaims synchronous adversary: whole-attempt thief
			// steps are schedulable only at owner operation boundaries.
			if sc.AtomicClaims && tid > 0 && (s.th[0].phase != 0 || s.th[0].hphase != 0) {
				continue
			}
			// The emulated signal can be delivered to the owner at any
			// instruction boundary, including in the middle of an
			// operation — the §4 race window.
			if tid == 0 && s.sigPending && s.sigBudget > 0 && s.th[0].hphase == 0 {
				ns := s
				label, v := ns.step(&sc, 0, true)
				rep.Transitions++
				path = append(path, label)
				if v != nil {
					record(v)
				} else {
					dfs(ns)
				}
				path = path[:len(path)-1]
			}
			ns := s
			label, v := ns.step(&sc, tid, false)
			rep.Transitions++
			path = append(path, label)
			if v != nil {
				record(v)
			} else {
				dfs(ns)
			}
			path = path[:len(path)-1]
		}
	}

	dfs(initialState(&sc))
	rep.States = len(seen)
	return rep
}

// normalize validates the scenario and applies defaults.
func normalize(sc Scenario) Scenario {
	if sc.Capacity <= 0 {
		sc.Capacity = 8
	}
	if sc.Capacity > maxSlots {
		panic(fmt.Sprintf("verify: capacity %d exceeds the modelled maximum %d", sc.Capacity, maxSlots))
	}
	if sc.Thieves < 0 || sc.Thieves > maxThreads-1 {
		panic(fmt.Sprintf("verify: thief count %d out of range [0,%d]", sc.Thieves, maxThreads-1))
	}
	if sc.Thieves > 0 && sc.StealAttempts <= 0 {
		panic("verify: scenario has thieves but no steal attempts")
	}
	if sc.StealHalf {
		if sc.BatchBuf <= 0 {
			sc.BatchBuf = 4
		}
		if sc.BatchBuf > maxSlots {
			panic(fmt.Sprintf("verify: batch buffer %d exceeds the modelled maximum %d", sc.BatchBuf, maxSlots))
		}
	}
	if sc.SignalBudget < 0 || sc.SignalBudget > 255 {
		panic("verify: signal budget out of range")
	}
	if sc.Relaxed {
		if !sc.RaceFix {
			panic("verify: relaxed scenarios require RaceFix (MultFree implies the §4 pop_bottom)")
		}
		if sc.StealHalf {
			panic("verify: relaxed scenarios model the single-claim protocol; the batched variant rides on the same cursor store (see deque.TakeTopHalfRelaxed)")
		}
	} else if sc.RelaxedNoRepair || sc.RelaxedNoClaimMemory || sc.AtomicClaims || sc.Pinned != 0 {
		panic("verify: relaxed knobs (NoRepair/NoClaimMemory/AtomicClaims/Pinned) require Relaxed")
	}
	if sc.RelaxedNoStampCheck && (!sc.Relaxed || !sc.Circular) {
		panic("verify: RelaxedNoStampCheck ablates the stamp validation of the relaxed claim path on the circular array model; it requires both Relaxed and Circular")
	}
	grows := 0
	for _, op := range sc.Owner {
		switch op.Kind {
		case OpPopPublicBottom, OpDrain:
			if sc.Relaxed {
				panic(fmt.Sprintf("verify: op %v violates the MultFree owner discipline (UnexposeAll-only reclaim; PopPublicBottom's emptying path resets absolute indices and would break the monotone claim memory)", op))
			}
		case OpPushBottom, OpPopBottom, OpUpdatePublicBottom, OpUnexposeAll, OpDrainBatch:
		case OpGrowNaive:
			if sc.Circular {
				panic("verify: GrowNaive is the compacting negative on the absolute-index model and cannot be combined with Circular")
			}
			grows++
		case OpGrow:
			grows++
		default:
			panic(fmt.Sprintf("verify: op %v is not a valid owner op", op))
		}
	}
	if final := sc.Capacity << grows; final > maxSlots {
		panic(fmt.Sprintf("verify: scenario %q grows capacity %d to %d, beyond the modelled maximum %d",
			sc.Name, sc.Capacity, final, maxSlots))
	}
	return sc
}
