package verify

import "fmt"

// This file is the micro-step interpreter. Each deque operation is
// executed one shared-memory access at a time, in exactly the order the
// implementation in internal/deque/splitdeque.go performs them; local
// computation (comparisons, arithmetic) is folded into the adjacent
// shared access, since only the order of shared accesses is observable
// to other threads. Phase 0 always means "operation boundary" — the
// points at which the emulated exposure signal may be delivered to the
// owner and at which the index invariant is asserted.

// step executes one micro-step of thread tid on s, mutating it in
// place. deliver (owner only) delivers a pending exposure signal
// instead of running the next instruction. It returns a human-readable
// label for the transition and a violation if the step itself detected
// one (duplicate return or slot corruption).
func (s *state) step(sc *Scenario, tid int, deliver bool) (string, *Violation) {
	t := &s.th[tid]
	if deliver {
		t.hphase = 1
		if relaxedRepairOn(sc) {
			// The handler's Expose runs the repairRelaxed fold first.
			t.hphase = 4
		}
		s.sigPending = false
		s.sigBudget--
		return "owner: <exposure signal delivered>", nil
	}
	if tid == 0 && t.hphase != 0 {
		return s.handlerStep(sc, t)
	}
	if tid == 0 {
		op := sc.Owner[t.ip]
		kind := op.Kind
		if kind == OpDrain || kind == OpDrainBatch {
			if t.drain == 0 {
				t.drain = 1
			}
			switch t.drain {
			case 1:
				kind = OpPopBottom
			case 2:
				kind = OpPopPublicBottom
			default: // 3
				kind = OpUnexposeAll
			}
		}
		switch kind {
		case OpPushBottom:
			return s.pushStep(sc, t, op.Arg)
		case OpPopBottom:
			return s.popBottomStep(sc, t)
		case OpPopPublicBottom:
			return s.popPublicStep(sc, t)
		case OpUpdatePublicBottom:
			return s.updatePublicStep(sc, t)
		case OpUnexposeAll:
			return s.unexposeStep(sc, t)
		case OpGrow:
			return s.growStep(sc, t)
		case OpGrowNaive:
			return s.growNaiveStep(sc, t)
		default:
			panic(fmt.Sprintf("verify: owner cannot run op %v", op))
		}
	}
	if sc.Relaxed {
		return s.relaxedTakeStep(sc, t, tid)
	}
	if sc.StealHalf {
		return s.popTopHalfStep(sc, t, tid)
	}
	return s.popTopStep(sc, t, tid)
}

// relaxedRepairOn reports whether the owner's expose/reclaim ops run
// the repairRelaxed cursor fold (the MultFree owner discipline, unless
// a negative scenario ablates it).
func relaxedRepairOn(sc *Scenario) bool { return sc.Relaxed && !sc.RelaxedNoRepair }

// completeOwner finishes the owner's current op. returnedTask reports
// whether the op returned a task — or, for UnexposeAll, reclaimed at
// least one (drives the drain loops of Listing 1 and the batch mode).
func (t *thread) completeOwner(sc *Scenario, returnedTask bool) {
	t.phase, t.r1, t.r2, t.r3, t.r4 = 0, 0, 0, 0, 0
	switch sc.Owner[t.ip].Kind {
	case OpDrain:
		switch {
		case t.drain == 1 && returnedTask:
			// pop_bottom found a private task; keep popping privately.
		case t.drain == 1:
			// Private part empty: fall through to pop_public_bottom, the
			// only legal next deque op (it also repairs bot after a failed
			// race-fix pop_bottom).
			t.drain = 2
		case returnedTask:
			// pop_public_bottom recovered a public task; the scheduler
			// executes it and comes back through pop_bottom.
			t.drain = 1
		default:
			// pop_public_bottom returned nil: the deque is empty (either
			// fully reset or the last task went to a thief). Drain done.
			t.drain = 0
			t.ip++
		}
	case OpDrainBatch:
		switch {
		case t.drain == 1 && returnedTask:
			// pop_bottom found a private task; keep popping privately.
		case t.drain == 1:
			// Private part empty: reclaim the public part wholesale
			// (batch owner discipline — never pop_public_bottom; it also
			// repairs bot after a failed race-fix pop_bottom).
			t.drain = 3
		case returnedTask:
			// UnexposeAll reclaimed public tasks into the private part;
			// pop them synchronization-free.
			t.drain = 1
		default:
			// UnexposeAll found nothing to reclaim: every task was popped
			// or stolen. Drain done.
			t.drain = 0
			t.ip++
		}
	default:
		t.ip++
	}
}

// complete finishes a thief's current attempt.
func (t *thread) complete() {
	t.phase, t.r1, t.r2, t.r3, t.r4 = 0, 0, 0, 0, 0
	t.ip++
}

// pushStep: PushBottom (Listing 2, sync-free — paper Lemma 1).
//
//	b := bot.Load(); deq[b].Store(task); bot.Store(b+1)
func (s *state) pushStep(sc *Scenario, t *thread, id uint8) (string, *Violation) {
	switch t.phase {
	case 0:
		t.r1 = s.bot
		if sc.Circular {
			// The circular model runs the implementation's actual window
			// check, bot - top >= capacity against a fresh top, and grows
			// when the window is full, exactly as TryPushBottom does: the
			// doubled generation is published in this same micro-step
			// (the publish is the growth's single thief-visible write;
			// the top load feeding the copy bound folds into it).
			if top, _ := unpackAge(s.age); t.r1-uint64(top) >= uint64(s.cap) {
				if 2*int(s.cap) > maxSlots {
					panic(fmt.Sprintf("verify: scenario %q grows beyond the modelled maximum %d", sc.Name, maxSlots))
				}
				s.rehash(uint64(top), 2*s.cap)
				t.phase = 1
				return fmt.Sprintf("owner: push(%d) load bot=%d (window full: grow publish capacity=%d)", id, t.r1, s.cap), nil
			}
		} else if t.r1 >= uint64(s.cap) {
			// The absolute-index model's window check conservatively
			// assumes top == 0 (the worst case over all interleavings) so
			// that a scenario either fits in every schedule or is
			// rejected deterministically. Scripts push past the initial
			// capacity by inserting an explicit Grow op first.
			panic(fmt.Sprintf("verify: scenario %q overflows capacity %d without a Grow op", sc.Name, s.cap))
		}
		t.phase = 1
		return fmt.Sprintf("owner: push(%d) load bot=%d", id, t.r1), nil
	case 1:
		// The push stamp is stored into the descriptor before the slot
		// publish and is read atomically with it, so the pair is one
		// micro-step (taskIdx is per-task, immutable once written).
		s.slots[s.phys(sc, t.r1)] = id
		s.taskIdx[id] = uint8(t.r1)
		t.phase = 2
		return fmt.Sprintf("owner: push(%d) store slot[%d]", id, s.phys(sc, t.r1)), nil
	default:
		s.bot = t.r1 + 1
		bit := uint16(1) << id
		if s.pushed&bit != 0 {
			panic(fmt.Sprintf("verify: scenario %q pushes task id %d twice", sc.Name, id))
		}
		s.pushed |= bit
		b := t.r1
		t.completeOwner(sc, false)
		return fmt.Sprintf("owner: push(%d) store bot=%d", id, b+1), nil
	}
}

// popBottomStep: PopBottom in the variant selected by sc.RaceFix
// (sync-free — paper Lemma 2). Registers: r1 = b, r2 = publicBot,
// r3 = task.
func (s *state) popBottomStep(sc *Scenario, t *thread) (string, *Violation) {
	if sc.RaceFix {
		// §4: b := bot.Load(); if b == 0 return nil; b--; bot.Store(b);
		// if b < publicBot.Load() return nil; return deq[b].Load()
		switch t.phase {
		case 0:
			t.r1 = s.bot
			if t.r1 == 0 {
				t.completeOwner(sc, false)
				return "owner: pop_bottom load bot=0 -> nil (empty, reset)", nil
			}
			t.phase = 1
			return fmt.Sprintf("owner: pop_bottom load bot=%d", t.r1), nil
		case 1:
			s.bot = t.r1 - 1
			t.phase = 2
			return fmt.Sprintf("owner: pop_bottom store bot=%d (pre-decrement)", t.r1-1), nil
		case 2:
			t.r2 = s.publicBot
			if t.r1-1 < t.r2 {
				// The decremented slot is public: leave bot one below
				// publicBot for PopPublicBottom to repair (§4).
				t.completeOwner(sc, false)
				return fmt.Sprintf("owner: pop_bottom load publicBot=%d -> nil (slot went public)", t.r2), nil
			}
			t.phase = 3
			return fmt.Sprintf("owner: pop_bottom load publicBot=%d", t.r2), nil
		default:
			idx := t.r1 - 1
			id := s.slots[s.phys(sc, idx)]
			if id == 0 {
				return "owner: pop_bottom load slot", &Violation{Kind: SlotCorruption,
					Detail: fmt.Sprintf("pop_bottom read empty slot %d", idx)}
			}
			v := s.recordReturn(sc, id)
			t.completeOwner(sc, true)
			return fmt.Sprintf("owner: pop_bottom load slot[%d] -> task %d", idx, id), v
		}
	}
	// Original Listing 2: b := bot.Load(); if b == publicBot.Load()
	// return nil; b--; bot.Store(b); return deq[b].Load()
	switch t.phase {
	case 0:
		t.r1 = s.bot
		t.phase = 1
		return fmt.Sprintf("owner: pop_bottom load bot=%d", t.r1), nil
	case 1:
		t.r2 = s.publicBot
		if t.r1 == t.r2 {
			t.completeOwner(sc, false)
			return fmt.Sprintf("owner: pop_bottom load publicBot=%d -> nil (private empty)", t.r2), nil
		}
		t.phase = 2
		return fmt.Sprintf("owner: pop_bottom load publicBot=%d", t.r2), nil
	case 2:
		s.bot = t.r1 - 1
		t.phase = 3
		return fmt.Sprintf("owner: pop_bottom store bot=%d", t.r1-1), nil
	default:
		idx := t.r1 - 1
		id := s.slots[s.phys(sc, idx)]
		if id == 0 {
			return "owner: pop_bottom load slot", &Violation{Kind: SlotCorruption,
				Detail: fmt.Sprintf("pop_bottom read empty slot %d", idx)}
		}
		v := s.recordReturn(sc, id)
		t.completeOwner(sc, true)
		return fmt.Sprintf("owner: pop_bottom load slot[%d] -> task %d", idx, id), v
	}
}

// popPublicStep: PopPublicBottom (Listing 2 lines 10–29). Registers:
// r1 = pb (pre-decrement), r2 = oldAge, r3 = task id.
func (s *state) popPublicStep(sc *Scenario, t *thread) (string, *Violation) {
	switch t.phase {
	case 0:
		t.r1 = s.publicBot
		if t.r1 == 0 {
			if sc.RaceFix {
				t.phase = 1 // repair bot in a separate store
				return "owner: pop_public_bottom load publicBot=0", nil
			}
			t.completeOwner(sc, false)
			return "owner: pop_public_bottom load publicBot=0 -> nil", nil
		}
		t.phase = 2
		return fmt.Sprintf("owner: pop_public_bottom load publicBot=%d", t.r1), nil
	case 1:
		s.bot = 0
		t.completeOwner(sc, false)
		return "owner: pop_public_bottom store bot=0 (repair) -> nil", nil
	case 2:
		s.publicBot = t.r1 - 1
		t.phase = 3
		return fmt.Sprintf("owner: pop_public_bottom store publicBot=%d", t.r1-1), nil
	case 3:
		t.r3 = uint64(s.slots[s.phys(sc, t.r1-1)])
		t.phase = 4
		return fmt.Sprintf("owner: pop_public_bottom load slot[%d] -> task %d", t.r1-1, t.r3), nil
	case 4:
		t.r2 = s.age
		top, _ := unpackAge(t.r2)
		if t.r1-1 > uint64(top) {
			t.phase = 5
		} else {
			t.phase = 6
		}
		return fmt.Sprintf("owner: pop_public_bottom load age (top=%d)", top), nil
	case 5:
		// Common path: public tasks remain above top.
		idx := t.r1 - 1
		s.bot = idx
		id := uint8(t.r3)
		if id == 0 {
			return "owner: pop_public_bottom store bot", &Violation{Kind: SlotCorruption,
				Detail: fmt.Sprintf("pop_public_bottom read empty slot %d", idx)}
		}
		v := s.recordReturn(sc, id)
		t.completeOwner(sc, true)
		return fmt.Sprintf("owner: pop_public_bottom store bot=%d -> task %d", idx, id), v
	case 6:
		// Emptying path (line 20 onward): reset indices, race thieves.
		s.bot = 0
		t.phase = 7
		return "owner: pop_public_bottom store bot=0 (emptying)", nil
	case 7:
		s.publicBot = 0
		top, _ := unpackAge(t.r2)
		if t.r1-1 == uint64(top) {
			t.phase = 8
		} else {
			t.phase = 9
		}
		return "owner: pop_public_bottom store publicBot=0 (emptying)", nil
	case 8:
		top, tag := unpackAge(t.r2)
		_ = top
		if s.age == t.r2 {
			s.age = packAge(0, tag+1)
			id := uint8(t.r3)
			if id == 0 {
				return "owner: pop_public_bottom CAS age", &Violation{Kind: SlotCorruption,
					Detail: fmt.Sprintf("pop_public_bottom read empty slot %d", t.r1-1)}
			}
			v := s.recordReturn(sc, id)
			t.completeOwner(sc, true)
			return fmt.Sprintf("owner: pop_public_bottom CAS age ok -> task %d", id), v
		}
		t.phase = 9
		return "owner: pop_public_bottom CAS age failed (thief won)", nil
	default:
		_, tag := unpackAge(t.r2)
		s.age = packAge(0, tag+1)
		t.completeOwner(sc, false)
		return "owner: pop_public_bottom store age (reset) -> nil", nil
	}
}

// updatePublicStep: the scripted form of update_public_bottom
// (Listing 2 lines 44–46, sync-free — §4 footnote 3). Registers:
// r1 = pb, r2 = b.
func (s *state) updatePublicStep(sc *Scenario, t *thread) (string, *Violation) {
	switch t.phase {
	case 0, 13:
		if t.phase == 0 && relaxedRepairOn(sc) {
			// MultFree: deque.Expose runs repairRelaxed before exposing.
			t.r1 = s.age
			t.phase = 10
			top, _ := unpackAge(t.r1)
			return fmt.Sprintf("owner: update_public_bottom repair load age (top=%d)", top), nil
		}
		t.r1 = s.publicBot
		t.phase = 1
		return fmt.Sprintf("owner: update_public_bottom load publicBot=%d", t.r1), nil
	case 10:
		t.r2 = s.relNext
		top, tag := unpackAge(t.r1)
		rIdx, rTag := unpackAge(t.r2)
		if rTag != tag || rIdx <= top {
			t.phase = 13 // cursor not honored: proceed to the exposure
			return fmt.Sprintf("owner: update_public_bottom repair load relNext (idx=%d tag=%d, not honored)", rIdx, rTag), nil
		}
		t.phase = 11
		return fmt.Sprintf("owner: update_public_bottom repair load relNext (idx=%d, honored)", rIdx), nil
	case 11:
		_, tag := unpackAge(t.r1)
		rIdx, _ := unpackAge(t.r2)
		if s.age == t.r1 {
			s.age = packAge(rIdx, tag)
			t.phase = 13
			return fmt.Sprintf("owner: update_public_bottom repair CAS age ok (top=%d)", rIdx), nil
		}
		t.phase = 12
		return "owner: update_public_bottom repair CAS age failed (retry)", nil
	case 12:
		t.r1 = s.age
		t.phase = 10
		top, _ := unpackAge(t.r1)
		return fmt.Sprintf("owner: update_public_bottom repair load age (top=%d, retry)", top), nil
	case 1:
		t.r2 = s.bot
		if t.r2 < t.r1 {
			t.completeOwner(sc, false)
			return fmt.Sprintf("owner: update_public_bottom load bot=%d -> no-op (mid pop_bottom)", t.r2), nil
		}
		if exposeCount(sc.Expose, t.r2-t.r1) == 0 {
			t.completeOwner(sc, false)
			return fmt.Sprintf("owner: update_public_bottom load bot=%d -> no-op (policy)", t.r2), nil
		}
		t.phase = 2
		return fmt.Sprintf("owner: update_public_bottom load bot=%d", t.r2), nil
	default:
		n := exposeCount(sc.Expose, t.r2-t.r1)
		s.publicBot = t.r1 + n
		t.completeOwner(sc, false)
		return fmt.Sprintf("owner: update_public_bottom store publicBot=%d (+%d)", t.r1+n, n), nil
	}
}

// handlerStep runs the emulated exposure signal handler on the owner.
// It executes the same micro-steps as update_public_bottom but on the
// handler frame, so it can interrupt any owner operation mid-flight.
// h1 holds pb, then pb+n once the store is committed to.
func (s *state) handlerStep(sc *Scenario, t *thread) (string, *Violation) {
	switch t.hphase {
	case 4: // relaxed repair fold (deque.Expose head), handler frame
		t.h1 = s.age
		t.hphase = 5
		top, _ := unpackAge(t.h1)
		return fmt.Sprintf("owner(sig): expose repair load age (top=%d)", top), nil
	case 5:
		t.h2 = s.relNext
		top, tag := unpackAge(t.h1)
		rIdx, rTag := unpackAge(t.h2)
		if rTag != tag || rIdx <= top {
			t.hphase, t.h2 = 1, 0 // cursor not honored: proceed to the exposure
			return fmt.Sprintf("owner(sig): expose repair load relNext (idx=%d tag=%d, not honored)", rIdx, rTag), nil
		}
		t.hphase = 6
		return fmt.Sprintf("owner(sig): expose repair load relNext (idx=%d, honored)", rIdx), nil
	case 6:
		_, tag := unpackAge(t.h1)
		rIdx, _ := unpackAge(t.h2)
		if s.age == t.h1 {
			s.age = packAge(rIdx, tag)
			t.hphase, t.h2 = 1, 0
			return fmt.Sprintf("owner(sig): expose repair CAS age ok (top=%d)", rIdx), nil
		}
		t.hphase = 4
		return "owner(sig): expose repair CAS age failed (retry)", nil
	case 1:
		t.h1 = s.publicBot
		t.hphase = 2
		return fmt.Sprintf("owner(sig): update_public_bottom load publicBot=%d", t.h1), nil
	case 2:
		b := s.bot
		if b < t.h1 {
			t.hphase, t.h1, t.h2 = 0, 0, 0
			return fmt.Sprintf("owner(sig): update_public_bottom load bot=%d -> no-op (mid pop_bottom)", b), nil
		}
		n := exposeCount(sc.Expose, b-t.h1)
		if n == 0 {
			t.hphase, t.h1, t.h2 = 0, 0, 0
			return fmt.Sprintf("owner(sig): update_public_bottom load bot=%d -> no-op (policy)", b), nil
		}
		t.h1 += n
		t.hphase = 3
		return fmt.Sprintf("owner(sig): update_public_bottom load bot=%d (will expose %d)", b, n), nil
	default:
		s.publicBot = t.h1
		t.hphase, t.h1, t.h2 = 0, 0, 0
		return fmt.Sprintf("owner(sig): update_public_bottom store publicBot=%d", s.publicBot), nil
	}
}

// popTopStep: a thief's PopTop attempt (Listing 2 lines 31–42).
// Registers: r1 = oldAge, r2 = pb, r3 = task id.
func (s *state) popTopStep(sc *Scenario, t *thread, tid int) (string, *Violation) {
	who := fmt.Sprintf("thief%d", tid)
	switch t.phase {
	case 0:
		t.r1 = s.age
		t.phase = 1
		top, _ := unpackAge(t.r1)
		return fmt.Sprintf("%s: pop_top load age (top=%d)", who, top), nil
	case 1:
		t.r2 = s.publicBot
		top, _ := unpackAge(t.r1)
		if t.r2 > uint64(top) {
			t.phase = 2
		} else {
			t.phase = 4
		}
		return fmt.Sprintf("%s: pop_top load publicBot=%d", who, t.r2), nil
	case 2:
		top, _ := unpackAge(t.r1)
		t.r3 = uint64(s.slots[s.phys(sc, uint64(top))])
		t.phase = 3
		return fmt.Sprintf("%s: pop_top load slot[%d] -> task %d", who, top, t.r3), nil
	case 3:
		top, tag := unpackAge(t.r1)
		if s.age == t.r1 {
			s.age = packAge(top+1, tag)
			id := uint8(t.r3)
			if id == 0 {
				return who + ": pop_top CAS age", &Violation{Kind: SlotCorruption,
					Detail: fmt.Sprintf("pop_top read empty slot %d", top)}
			}
			v := s.recordReturn(sc, id)
			t.complete()
			return fmt.Sprintf("%s: pop_top CAS age ok -> STOLEN task %d", who, id), v
		}
		t.complete()
		return who + ": pop_top CAS age failed -> ABORT", nil
	default:
		b := s.bot
		pb := t.r2
		t.complete()
		if pb < b {
			if sc.AutoSignal {
				s.sigPending = true
			}
			return fmt.Sprintf("%s: pop_top load bot=%d -> PRIVATE_WORK (notify owner)", who, b), nil
		}
		return fmt.Sprintf("%s: pop_top load bot=%d -> EMPTY", who, b), nil
	}
}

// popTopHalfStep: a thief's batched PopTopHalf attempt
// (deque.PopTopHalf): claim up to half of the public part, capped at
// sc.BatchBuf, with one CAS on the age word. Registers: r1 = oldAge,
// r2 = pb, r3 = the read task ids packed as nibbles (id i in bits
// [4i,4i+4)), r4 = batch size n (low byte) and slot-read cursor i
// (second byte). Every slot read is its own micro-step — the reads
// happen before the CAS in the implementation, and that window is
// exactly what the negative PopPublicBottom scenario exploits.
func (s *state) popTopHalfStep(sc *Scenario, t *thread, tid int) (string, *Violation) {
	who := fmt.Sprintf("thief%d", tid)
	switch t.phase {
	case 0:
		t.r1 = s.age
		t.phase = 1
		top, _ := unpackAge(t.r1)
		return fmt.Sprintf("%s: pop_top_half load age (top=%d)", who, top), nil
	case 1:
		t.r2 = s.publicBot
		top, _ := unpackAge(t.r1)
		if t.r2 > uint64(top) {
			n := (t.r2 - uint64(top) + 1) / 2 // round(avail/2), at least 1
			if n > uint64(sc.BatchBuf) {
				n = uint64(sc.BatchBuf)
			}
			t.r4 = n // cursor i starts at 0
			t.phase = 2
		} else {
			t.phase = 4
		}
		return fmt.Sprintf("%s: pop_top_half load publicBot=%d", who, t.r2), nil
	case 2:
		top, _ := unpackAge(t.r1)
		n := t.r4 & 0xff
		i := t.r4 >> 8
		idx := uint64(top) + i
		id := s.slots[s.phys(sc, idx)]
		t.r3 |= uint64(id) << (4 * i)
		i++
		t.r4 = n | i<<8
		if i >= n {
			t.phase = 3
		}
		return fmt.Sprintf("%s: pop_top_half load slot[%d] -> task %d", who, idx, id), nil
	case 3:
		top, tag := unpackAge(t.r1)
		n := t.r4 & 0xff
		if s.age == t.r1 {
			s.age = packAge(top+uint32(n), tag)
			for i := uint64(0); i < n; i++ {
				id := uint8(t.r3 >> (4 * i) & 0xf)
				if id == 0 {
					return who + ": pop_top_half CAS age", &Violation{Kind: SlotCorruption,
						Detail: fmt.Sprintf("pop_top_half read empty slot %d", uint64(top)+i)}
				}
				if v := s.recordReturn(sc, id); v != nil {
					t.complete()
					return fmt.Sprintf("%s: pop_top_half CAS age ok -> STOLEN %d tasks", who, n), v
				}
			}
			t.complete()
			return fmt.Sprintf("%s: pop_top_half CAS age ok -> STOLEN %d tasks [%d,%d)", who, n, top, uint64(top)+n), nil
		}
		t.complete()
		return who + ": pop_top_half CAS age failed -> ABORT", nil
	default:
		b := s.bot
		pb := t.r2
		t.complete()
		if pb < b {
			if sc.AutoSignal {
				s.sigPending = true
			}
			return fmt.Sprintf("%s: pop_top_half load bot=%d -> PRIVATE_WORK (notify owner)", who, b), nil
		}
		return fmt.Sprintf("%s: pop_top_half load bot=%d -> EMPTY", who, b), nil
	}
}

// unexposeStep: UnexposeAll (the Lace-style wholesale reclaim the batch
// owner discipline uses instead of PopPublicBottom). Registers: r1 = pb,
// r2 = oldAge. The retry path after a lost CAS re-enters the pb load at
// phase 8 (not phase 0) so that a mid-retry state is never mistaken for
// an operation boundary by the quiescence check.
//
// The bot repairs are conditional on bot < pb — an actual race-fix
// pre-decrement — mirroring the implementation: SpillOldest calls
// UnexposeAll with a NON-empty private part (bot > publicBot), which an
// unconditional bot store would truncate, losing tasks. bot is
// owner-written only, so the conditional's load folds into the store.
// (At publicBot == 0 there is nothing to repair at all: the race-fix
// pop_bottom returns before its decrement when bot is 0, so bot <
// publicBot cannot hold there.)
func (s *state) unexposeStep(sc *Scenario, t *thread) (string, *Violation) {
	switch t.phase {
	case 0, 8:
		if t.phase == 0 && relaxedRepairOn(sc) {
			// MultFree: fold honored relaxed claims into top before
			// reclaiming (deque.UnexposeAll runs repairRelaxed first).
			t.r1 = s.age
			t.phase = 10
			top, _ := unpackAge(t.r1)
			return fmt.Sprintf("owner: unexpose_all repair load age (top=%d)", top), nil
		}
		t.r1 = s.publicBot
		if t.r1 == 0 {
			t.completeOwner(sc, false)
			return "owner: unexpose_all load publicBot=0 -> 0", nil
		}
		t.phase = 2
		return fmt.Sprintf("owner: unexpose_all load publicBot=%d", t.r1), nil
	case 10:
		t.r2 = s.relNext
		top, tag := unpackAge(t.r1)
		rIdx, rTag := unpackAge(t.r2)
		if rTag != tag || rIdx <= top {
			t.phase = 8 // cursor not honored: proceed to the reclaim
			return fmt.Sprintf("owner: unexpose_all repair load relNext (idx=%d tag=%d, not honored)", rIdx, rTag), nil
		}
		t.phase = 11
		return fmt.Sprintf("owner: unexpose_all repair load relNext (idx=%d, honored)", rIdx), nil
	case 11:
		_, tag := unpackAge(t.r1)
		rIdx, _ := unpackAge(t.r2)
		if s.age == t.r1 {
			s.age = packAge(rIdx, tag)
			t.phase = 8
			return fmt.Sprintf("owner: unexpose_all repair CAS age ok (top=%d)", rIdx), nil
		}
		t.phase = 12
		return "owner: unexpose_all repair CAS age failed (retry)", nil
	case 12:
		t.r1 = s.age
		t.phase = 10
		top, _ := unpackAge(t.r1)
		return fmt.Sprintf("owner: unexpose_all repair load age (top=%d, retry)", top), nil
	case 2:
		t.r2 = s.age
		top, _ := unpackAge(t.r2)
		if t.r1 <= uint64(top) {
			if sc.RaceFix {
				t.phase = 3
				return fmt.Sprintf("owner: unexpose_all load age (top=%d, all stolen)", top), nil
			}
			t.completeOwner(sc, false)
			return fmt.Sprintf("owner: unexpose_all load age (top=%d) -> 0 (all stolen)", top), nil
		}
		t.phase = 4
		return fmt.Sprintf("owner: unexpose_all load age (top=%d)", top), nil
	case 3:
		pb := t.r1
		t.completeOwner(sc, false)
		if s.bot < pb {
			s.bot = pb
			return fmt.Sprintf("owner: unexpose_all store bot=%d (repair) -> 0", pb), nil
		}
		return "owner: unexpose_all load bot (no repair needed) -> 0", nil
	case 4:
		top, _ := unpackAge(t.r2)
		s.publicBot = uint64(top)
		t.phase = 5
		return fmt.Sprintf("owner: unexpose_all store publicBot=%d (hide public part)", top), nil
	case 5:
		top, tag := unpackAge(t.r2)
		if s.age == t.r2 {
			s.age = packAge(top, tag+1)
			t.phase = 6
			return "owner: unexpose_all CAS age ok (tag bump)", nil
		}
		t.phase = 7
		return "owner: unexpose_all CAS age failed (thief advanced top)", nil
	case 6:
		top, _ := unpackAge(t.r2)
		n := t.r1 - uint64(top)
		pb := t.r1
		t.completeOwner(sc, true)
		if s.bot < pb {
			s.bot = pb
			return fmt.Sprintf("owner: unexpose_all store bot=%d -> reclaimed %d", pb, n), nil
		}
		return fmt.Sprintf("owner: unexpose_all load bot (no repair, private part live) -> reclaimed %d", n), nil
	default: // 7: lost the CAS, restore the split and retry
		s.publicBot = t.r1
		t.phase = 8
		return fmt.Sprintf("owner: unexpose_all store publicBot=%d (restore, retry)", t.r1), nil
	}
}

// growStep: the index-preserving growth of TryPushBottom (splitdeque.go
// grow): load the age word (the refreshed fullness check that decided to
// grow, and the copy's lower bound), then publish the doubled generation
// with a single store. The model indexes the task array absolutely, so
// the re-masked copy — which keeps every live task at its absolute index
// — is a no-op on the modelled slots, and the publish changes only the
// capacity bound of the push window check. That no other modelled word
// changes IS the protocol's soundness claim: a published generation
// differs from its predecessor in no index, tag, or live slot content
// a thief can observe, so every steal interleaving explored here is
// identical to one without the growth. Registers: r1 = oldAge.
func (s *state) growStep(sc *Scenario, t *thread) (string, *Violation) {
	switch t.phase {
	case 0:
		t.r1 = s.age
		t.phase = 1
		top, _ := unpackAge(t.r1)
		return fmt.Sprintf("owner: grow load age (top=%d)", top), nil
	default:
		if 2*int(s.cap) > maxSlots {
			panic(fmt.Sprintf("verify: scenario %q grows beyond the modelled maximum %d", sc.Name, maxSlots))
		}
		if sc.Circular {
			// The circular model's physical layout depends on the
			// capacity, so the doubled generation's copy IS observable:
			// rehash the live window into the new masking, dropping the
			// superseded generation (see rehash).
			top, _ := unpackAge(t.r1)
			s.rehash(uint64(top), 2*s.cap)
			t.completeOwner(sc, false)
			return fmt.Sprintf("owner: grow publish capacity=%d (live window rehashed)", s.cap), nil
		}
		s.cap *= 2
		t.completeOwner(sc, false)
		return fmt.Sprintf("owner: grow publish capacity=%d (live slots at unchanged indices)", s.cap), nil
	}
}

// growNaiveStep: the deliberately unsound compacting growth (negative
// tests only). It moves the live window [top, bot) down to [0, bot-top)
// inside the published buffer, then rebases publicBot and bot with plain
// stores and rewrites the age word to (0, tag) WITHOUT bumping the tag.
// The flaw: a thief that read the pre-growth age (0-based top, same tag)
// and a pre-growth slot can still pass its CAS after the compaction
// moved a DIFFERENT task under that index — returning a stale task a
// second time. Registers: r1 = oldAge.
func (s *state) growNaiveStep(sc *Scenario, t *thread) (string, *Violation) {
	switch t.phase {
	case 0:
		t.r1 = s.age
		t.phase = 1
		top, _ := unpackAge(t.r1)
		return fmt.Sprintf("owner: grow_naive load age (top=%d)", top), nil
	case 1:
		// Compact and publish in one store: the copied contents travel
		// with the new buffer pointer, exactly as in an implementation
		// that compacts while copying into the doubled array.
		if 2*int(s.cap) > maxSlots {
			panic(fmt.Sprintf("verify: scenario %q grows beyond the modelled maximum %d", sc.Name, maxSlots))
		}
		top, _ := unpackAge(t.r1)
		n := uint64(0)
		if s.bot > uint64(top) {
			n = s.bot - uint64(top)
		}
		for i := uint64(0); i < n; i++ {
			s.slots[i] = s.slots[uint64(top)+i]
		}
		s.cap *= 2
		t.phase = 2
		return fmt.Sprintf("owner: grow_naive publish capacity=%d (compacted %d tasks to index 0)", s.cap, n), nil
	case 2:
		top, _ := unpackAge(t.r1)
		if s.publicBot > uint64(top) {
			s.publicBot -= uint64(top)
		} else {
			s.publicBot = 0
		}
		t.phase = 3
		return fmt.Sprintf("owner: grow_naive store publicBot=%d (rebased)", s.publicBot), nil
	case 3:
		top, _ := unpackAge(t.r1)
		if s.bot > uint64(top) {
			s.bot -= uint64(top)
		} else {
			s.bot = 0
		}
		t.phase = 4
		return fmt.Sprintf("owner: grow_naive store bot=%d (rebased)", s.bot), nil
	default:
		_, tag := unpackAge(t.r1)
		s.age = packAge(0, tag) // the bug: no tag bump
		t.completeOwner(sc, false)
		return "owner: grow_naive store age=(top 0, SAME tag)", nil
	}
}

// relaxedTakeStep: a thief's TakeTopRelaxed attempt (the MultFree
// fence- and CAS-free claim protocol of splitdeque.go). Registers:
// r1 = oldAge, r2 = pb, r3 = claim index, r4 = task id; t.cl is the
// thief's persistent monotone claim memory (deque.RelClaim), which —
// unlike the registers — survives attempt boundaries.
//
// The claim is max(top, tag-honored relNext cursor, cl); after
// validating claim < publicBot and reading the slot, an idempotent task
// is committed with a plain cursor store (no fence, no CAS), while a
// pinned task falls back to the exclusive age CAS, legal only when the
// claim is the authoritative top. On the circular model the slot read
// is validated against the task's push stamp first — a mismatch means
// the slot aliased under the thief's feet, and the claim aborts (or
// falls back to the same exclusive CAS when it sits at the
// authoritative top). Under Scenario.AtomicClaims the slot read and
// cursor store fuse into one micro-step — the landed-claim adversary
// under which the owner repair alone carries the bound.
func (s *state) relaxedTakeStep(sc *Scenario, t *thread, tid int) (string, *Violation) {
	who := fmt.Sprintf("thief%d", tid)
	commit := func(id uint8) *Violation {
		_, tag := unpackAge(t.r1)
		s.relNext = packAge(uint32(t.r3)+1, tag)
		if !sc.RelaxedNoClaimMemory {
			t.cl = t.r3 + 1
		}
		v := s.recordReturn(sc, id)
		t.complete()
		return v
	}
	switch t.phase {
	case 0:
		if sc.AtomicClaims {
			return s.relaxedTakeAtomic(sc, t, who)
		}
		t.r1 = s.age
		t.phase = 1
		top, _ := unpackAge(t.r1)
		return fmt.Sprintf("%s: take_top_relaxed load age (top=%d)", who, top), nil
	case 1:
		top, tag := unpackAge(t.r1)
		claim := uint64(top)
		rIdx, rTag := unpackAge(s.relNext)
		if rTag == tag && uint64(rIdx) > claim {
			claim = uint64(rIdx)
		}
		if !sc.RelaxedNoClaimMemory && t.cl > claim {
			claim = t.cl
		}
		t.r3 = claim
		t.phase = 2
		return fmt.Sprintf("%s: take_top_relaxed load relNext -> claim=%d", who, claim), nil
	case 2:
		t.r2 = s.publicBot
		if t.r3 >= t.r2 {
			t.phase = 5
		} else {
			t.phase = 3
		}
		return fmt.Sprintf("%s: take_top_relaxed load publicBot=%d", who, t.r2), nil
	case 3:
		id := s.slots[s.phys(sc, t.r3)]
		if id == 0 {
			if sc.Circular {
				// A dead physical slot zeroed by a generation publish: the
				// implementation would read the superseded generation's
				// stale task here and the stamp check would reject it, so
				// the nil read aborts on the same schedules (kept even
				// under the ablation — the model cannot fabricate the
				// dropped generation's content).
				t.complete()
				return fmt.Sprintf("%s: take_top_relaxed load slot[%d] -> empty (superseded slot) -> ABORT", who, t.r3), nil
			}
			return who + ": take_top_relaxed load slot", &Violation{Kind: SlotCorruption,
				Detail: fmt.Sprintf("take_top_relaxed read empty slot %d", t.r3)}
		}
		t.r4 = uint64(id)
		if sc.Circular && !sc.RelaxedNoStampCheck && uint64(s.taskIdx[id]) != t.r3 {
			// Stamp validation (deque.TakeTopRelaxed): the task read from
			// the slot was pushed at a different absolute index — the
			// slot aliased. At the authoritative top the exclusive age
			// CAS retroactively validates the read (overwriting the
			// claimed slot requires moving top past the claim first, so
			// an unchanged age word proves the read was not stale);
			// anywhere else the claim aborts.
			top, _ := unpackAge(t.r1)
			if t.r3 != uint64(top) {
				t.complete()
				return fmt.Sprintf("%s: take_top_relaxed load slot[%d] -> task %d stamp=%d mismatch -> ABORT", who, t.r3, id, s.taskIdx[id]), nil
			}
			t.phase = 6
			return fmt.Sprintf("%s: take_top_relaxed load slot[%d] -> task %d stamp=%d mismatch at top (exclusive fallback)", who, t.r3, id, s.taskIdx[id]), nil
		}
		if sc.Pinned&(1<<uint(id)) != 0 {
			top, _ := unpackAge(t.r1)
			if t.r3 != uint64(top) {
				// Exclusive claim impossible off the authoritative top:
				// leave the task for a CAS thief or the owner.
				t.complete()
				return fmt.Sprintf("%s: take_top_relaxed load slot[%d] -> task %d pinned, claim != top -> ABORT", who, t.r3, id), nil
			}
			t.phase = 6
			return fmt.Sprintf("%s: take_top_relaxed load slot[%d] -> task %d (pinned, exclusive fallback)", who, t.r3, id), nil
		}
		t.phase = 4
		return fmt.Sprintf("%s: take_top_relaxed load slot[%d] -> task %d", who, t.r3, id), nil
	case 4:
		id := uint8(t.r4)
		claim := t.r3
		if sc.Circular && uint64(s.taskIdx[id]) != claim {
			// The StaleSlotRead oracle: a relaxed commit of a task whose
			// push stamp does not match the claim index returned an
			// aliased — possibly never-exposed — task. Only the
			// RelaxedNoStampCheck ablation reaches this commit.
			return fmt.Sprintf("%s: take_top_relaxed store relNext=%d -> STALE task %d", who, claim+1, id),
				&Violation{Kind: StaleSlotRead,
					Detail: fmt.Sprintf("relaxed claim %d returned task %d pushed at index %d (aliased slot %d)", claim, id, s.taskIdx[id], s.phys(sc, claim))}
		}
		v := commit(id)
		return fmt.Sprintf("%s: take_top_relaxed store relNext=%d -> RELAXED-STOLEN task %d", who, claim+1, id), v
	case 5:
		b := s.bot
		pb := t.r2
		t.complete()
		if pb < b {
			if sc.AutoSignal {
				s.sigPending = true
			}
			return fmt.Sprintf("%s: take_top_relaxed load bot=%d -> PRIVATE_WORK (notify owner)", who, b), nil
		}
		return fmt.Sprintf("%s: take_top_relaxed load bot=%d -> EMPTY", who, b), nil
	default: // 6: exclusive CAS fallback (pinned task, or stamp mismatch) at top
		top, tag := unpackAge(t.r1)
		id := uint8(t.r4)
		if s.age == t.r1 {
			s.age = packAge(top+1, tag)
			if !sc.RelaxedNoClaimMemory {
				t.cl = t.r3 + 1
			}
			v := s.recordReturn(sc, id)
			t.complete()
			return fmt.Sprintf("%s: take_top_relaxed CAS age ok -> STOLEN task %d (exclusive)", who, id), v
		}
		t.complete()
		return who + ": take_top_relaxed CAS age failed -> ABORT", nil
	}
}

// relaxedTakeAtomic runs one ENTIRE TakeTopRelaxed attempt as a single
// step — the Scenario.AtomicClaims synchronous adversary, scheduled
// only at owner operation boundaries (explore.go enforces the
// scheduling restriction). Every read is fresh and the cursor store is
// visible before the owner's next operation, so the only duplication
// mechanism left is the owner RE-OFFERING claimed work: with the repair
// fold this never happens (exactly-once even for stateless thieves);
// with RelaxedNoRepair each unexpose/re-expose epoch re-offers the
// claimed task — the negative counterexample.
func (s *state) relaxedTakeAtomic(sc *Scenario, t *thread, who string) (string, *Violation) {
	top, tag := unpackAge(s.age)
	claim := uint64(top)
	if rIdx, rTag := unpackAge(s.relNext); rTag == tag && uint64(rIdx) > claim {
		claim = uint64(rIdx)
	}
	if !sc.RelaxedNoClaimMemory && t.cl > claim {
		claim = t.cl
	}
	if claim >= s.publicBot {
		empty := s.publicBot >= s.bot
		t.complete()
		if !empty {
			if sc.AutoSignal {
				s.sigPending = true
			}
			return fmt.Sprintf("%s: take_top_relaxed (atomic) -> PRIVATE_WORK (notify owner)", who), nil
		}
		return fmt.Sprintf("%s: take_top_relaxed (atomic) -> EMPTY", who), nil
	}
	id := s.slots[s.phys(sc, claim)]
	if id == 0 {
		return who + ": take_top_relaxed (atomic) load slot", &Violation{Kind: SlotCorruption,
			Detail: fmt.Sprintf("take_top_relaxed read empty slot %d", claim)}
	}
	if sc.Circular && uint64(s.taskIdx[id]) != claim {
		// An atomic attempt reads everything fresh, so its claim is in
		// the live window and the slot cannot have aliased; a mismatch
		// here is a model bug, surfaced as the stale-read violation.
		return who + ": take_top_relaxed (atomic) load slot", &Violation{Kind: StaleSlotRead,
			Detail: fmt.Sprintf("atomic relaxed claim %d read task %d pushed at index %d", claim, id, s.taskIdx[id])}
	}
	if sc.Pinned&(1<<uint(id)) != 0 {
		if claim != uint64(top) {
			t.complete()
			return fmt.Sprintf("%s: take_top_relaxed (atomic) task %d pinned, claim != top -> ABORT", who, id), nil
		}
		// The exclusive CAS cannot fail inside an atomic attempt.
		s.age = packAge(top+1, tag)
		if !sc.RelaxedNoClaimMemory {
			t.cl = claim + 1
		}
		v := s.recordReturn(sc, id)
		t.complete()
		return fmt.Sprintf("%s: take_top_relaxed (atomic) CAS age -> STOLEN pinned task %d", who, id), v
	}
	s.relNext = packAge(uint32(claim)+1, tag)
	if !sc.RelaxedNoClaimMemory {
		t.cl = claim + 1
	}
	v := s.recordReturn(sc, id)
	t.complete()
	return fmt.Sprintf("%s: take_top_relaxed (atomic) claim slot[%d] -> RELAXED-STOLEN task %d", who, claim, id), v
}
