package trace

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

// The derived scheduler latencies, each backed by one Histogram per
// worker. Indices into Recorder.hists and Trace.Latencies.
const (
	// LatStealToHit is the time from a thief's first fruitless steal
	// attempt of a search to its next successful steal.
	LatStealToHit = iota
	// LatFlagToExpose is the time from a thief setting a victim's
	// targeted flag to the victim exposing work (at a task boundary or
	// in the signal handler).
	LatFlagToExpose
	// LatSignalToHandle is the time from an emulated signal send to the
	// victim running its exposure handler.
	LatSignalToHandle
	// LatPark is the duration of one idle-blocking episode (backoff
	// sleep or semaphore park).
	LatPark

	NumLatencies
)

var latencyNames = [NumLatencies]string{
	LatStealToHit:     "steal_to_hit",
	LatFlagToExpose:   "flag_to_exposure",
	LatSignalToHandle: "signal_to_handle",
	LatPark:           "park_duration",
}

// LatencyName returns the snake_case name of latency index which.
func LatencyName(which int) string {
	if which < 0 || which >= NumLatencies {
		return fmt.Sprintf("latency(%d)", which)
	}
	return latencyNames[which]
}

// HistBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations in [2^(i-1), 2^i) ns (bucket 0 counts 0 ns), so
// the top bucket absorbs everything from ~9 minutes up.
const HistBuckets = 40

// Histogram is a power-of-two-bucketed latency histogram in
// nanoseconds. The zero value is an empty histogram ready for use. Like
// the scheduler's counters it is written owner-locally without
// synchronization, so cross-worker aggregates are exact only after the
// run quiesces.
type Histogram struct {
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum_ns"`
	Min     uint64              `json:"min_ns"`
	Max     uint64              `json:"max_ns"`
	Buckets [HistBuckets]uint64 `json:"buckets"`
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns uint64) int {
	b := bits.Len64(ns)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// bucketMid returns a representative value (geometric midpoint) for
// bucket i, used by Quantile.
func bucketMid(i int) uint64 {
	if i == 0 {
		return 0
	}
	lo := uint64(1) << uint(i-1)
	return lo + lo/2
}

// Observe records one latency sample. Negative samples (possible only
// via clock anomalies) are clamped to zero rather than corrupting the
// bucket index.
func (h *Histogram) Observe(ns int64) {
	v := uint64(0)
	if ns > 0 {
		v = uint64(ns)
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bucketOf(v)]++
}

// Add returns the merge of h and other (bucket-wise sum, Min/Max
// widened).
func (h Histogram) Add(other Histogram) Histogram {
	out := h
	if other.Count > 0 {
		if out.Count == 0 || other.Min < out.Min {
			out.Min = other.Min
		}
		if other.Max > out.Max {
			out.Max = other.Max
		}
		out.Count += other.Count
		out.Sum += other.Sum
		for i := range out.Buckets {
			out.Buckets[i] += other.Buckets[i]
		}
	}
	return out
}

// Sub returns the interval delta h - prev with counts clamped at zero
// (a reset between the snapshots cannot produce wrapped counts). Min
// and Max cannot be un-merged, so the later snapshot's extrema carry
// over: they bound, rather than equal, the interval's extrema.
func (h Histogram) Sub(prev Histogram) Histogram {
	out := h
	out.Count = clampSub(h.Count, prev.Count)
	out.Sum = clampSub(h.Sum, prev.Sum)
	for i := range out.Buckets {
		out.Buckets[i] = clampSub(h.Buckets[i], prev.Buckets[i])
	}
	if out.Count == 0 {
		out.Min, out.Max = 0, 0
	}
	return out
}

func clampSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Mean returns the mean sample in nanoseconds, or 0 for an empty
// histogram.
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) in
// nanoseconds, interpolated from the bucket boundaries; the extremes
// are clamped to the recorded Min/Max.
func (h Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	cum := uint64(0)
	for i, c := range h.Buckets {
		cum += c
		if float64(cum) >= rank {
			v := bucketMid(i)
			if v < h.Min {
				v = h.Min
			}
			if v > h.Max {
				v = h.Max
			}
			return v
		}
	}
	return h.Max
}

// String renders a compact one-line summary.
func (h Histogram) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%s p50=%s p99=%s max=%s",
		h.Count, fmtNs(uint64(h.Mean())), fmtNs(h.Quantile(0.50)),
		fmtNs(h.Quantile(0.99)), fmtNs(h.Max))
	return b.String()
}

// atomicHist is the recorder-internal histogram: the same buckets as
// Histogram with every word atomic, so Scheduler.Stats and
// TraceSnapshot can read it concurrently with the owner's observe
// without a data race. The owning worker is the only writer, so its
// updates are plain load + atomic store pairs — no RMW instructions —
// and cross-field consistency (count vs sum) is only guaranteed after
// the run quiesces, the same contract as the counters.
//
//lcws:manifest
type atomicHist struct {
	count   atomic.Uint64              //lcws:field atomic
	sum     atomic.Uint64              //lcws:field atomic
	min     atomic.Uint64              //lcws:field atomic
	max     atomic.Uint64              //lcws:field atomic
	buckets [HistBuckets]atomic.Uint64 //lcws:field thief-shared — element ops are atomic; the array word itself is never written
}

// observe records one sample; owner-only.
//
//lcws:noalloc
func (h *atomicHist) observe(ns int64) {
	v := uint64(0)
	if ns > 0 {
		v = uint64(ns)
	}
	c := h.count.Load()
	if c == 0 || v < h.min.Load() {
		h.min.Store(v)
	}
	if v > h.max.Load() {
		h.max.Store(v)
	}
	h.count.Store(c + 1)
	h.sum.Store(h.sum.Load() + v)
	b := &h.buckets[bucketOf(v)]
	b.Store(b.Load() + 1)
}

// snapshot returns the histogram as the public plain-field type; safe
// from any goroutine.
func (h *atomicHist) snapshot() Histogram {
	var out Histogram
	out.Count = h.count.Load()
	out.Sum = h.sum.Load()
	out.Min = h.min.Load()
	out.Max = h.max.Load()
	for i := range out.Buckets {
		out.Buckets[i] = h.buckets[i].Load()
	}
	return out
}

// reset zeroes the histogram; exact only while the owner is not
// observing, like a counter reset.
func (h *atomicHist) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// fmtNs renders nanoseconds with a readable unit.
func fmtNs(ns uint64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
