package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace is a decoded flight-recorder snapshot of one scheduler: the
// merged event streams of all workers plus the derived latency
// histograms. Scheduler.TraceSnapshot returns one.
type Trace struct {
	// Policy is the scheduling policy's String() form.
	Policy string `json:"policy"`
	// Workers is the pool size P.
	Workers int `json:"workers"`
	// Dropped is the total number of events lost across all workers
	// (ring wrap-around plus snapshot freeze windows).
	Dropped uint64 `json:"dropped"`
	// Events holds all workers' events merged and sorted by Ts.
	Events []Event `json:"events"`
	// Latencies are the four derived histograms (Lat* indices),
	// aggregated across workers.
	Latencies [NumLatencies]Histogram `json:"latencies"`
	// Jobs holds the submission-to-settlement spans of jobs settled
	// while tracing (bounded; oldest dropped first when full).
	Jobs []JobSpan `json:"jobs,omitempty"`
}

// Hist returns the aggregated histogram for latency index which.
func (t *Trace) Hist(which int) Histogram { return t.Latencies[which] }

// chromeEvent is one entry of the Chrome trace_event "traceEvents"
// array. ts/dur are microseconds (float permitted by the format).
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	ID    string         `json:"id,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

const chromePid = 1

func toMicros(ns int64) float64 { return float64(ns) / 1e3 }

// spanNames maps the span-opening event types to their display names.
var spanNames = map[EventType]string{
	EvTaskBegin: "task",
	EvPark:      "park",
}

// instantName returns the display name and args of a non-span event.
func instantName(e Event) (string, map[string]any) {
	switch e.Type {
	case EvFork:
		return "fork", nil
	case EvStealAttempt:
		return "steal.attempt", map[string]any{"victim": e.Arg}
	case EvStealHit:
		return "steal.hit", map[string]any{"victim": e.Arg, "tasks": e.Arg2}
	case EvExposeReq:
		return "expose.request", map[string]any{"victim": e.Arg}
	case EvSignalSend:
		return "signal.send", map[string]any{"victim": e.Arg}
	case EvSignalHandle:
		return "signal.handle", map[string]any{"exposed": e.Arg}
	case EvExpose:
		return "expose", map[string]any{"exposed": e.Arg}
	case EvDequeEmpty:
		return "deque.empty", nil
	case EvRepair:
		return "repair", map[string]any{"reclaimed": e.Arg}
	case EvGrow:
		return "deque.grow", map[string]any{"capacity": e.Arg}
	case EvSpill:
		return "spill", map[string]any{"spilled": e.Arg}
	case EvJobSwitch:
		return "job.switch", map[string]any{"job": e.Arg}
	case EvResize:
		return "pool.resize", map[string]any{"workers": e.Arg}
	case EvRetire:
		return "pool.retire", nil
	default:
		return e.Type.String(), nil
	}
}

// WriteChrome writes the trace in Chrome trace_event JSON (object
// form), loadable by Perfetto and chrome://tracing. Task-run and park
// episodes become duration ("B"/"E") spans, everything else
// thread-scoped instants; each job's submission-to-settlement interval
// becomes an async ("b"/"e") span so overlapping jobs render as
// separate tracks; the aggregated latency histograms, policy and drop
// count ride in "otherData". Unbalanced spans — a snapshot can open a
// span whose end fell outside the ring, or cut off a still-open one —
// are repaired: orphan ends are dropped, dangling begins closed at the
// trace's last timestamp.
func WriteChrome(w io.Writer, t *Trace) error {
	var lastTs int64
	for _, e := range t.Events {
		if e.Ts > lastTs {
			lastTs = e.Ts
		}
	}

	out := chromeFile{
		TraceEvents:     make([]chromeEvent, 0, len(t.Events)+2*t.Workers+2*len(t.Jobs)+2),
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"policy":  t.Policy,
			"workers": t.Workers,
			"dropped": t.Dropped,
			"histograms": func() map[string]Histogram {
				m := make(map[string]Histogram, NumLatencies)
				for i := 0; i < NumLatencies; i++ {
					m[LatencyName(i)] = t.Latencies[i]
				}
				return m
			}(),
		},
	}

	// Metadata: one process row per scheduler, one thread row per worker.
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "lcws " + t.Policy},
	})
	for i := 0; i < t.Workers; i++ {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: i,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", i)},
		})
	}

	// Per-worker span-depth tracking for the balancing pass. Task and
	// park spans cannot interleave on one worker (parking happens only
	// between tasks), so a single per-worker stack suffices.
	type open struct{ name string }
	stacks := make(map[int][]open, t.Workers)

	for _, e := range t.Events {
		switch e.Type {
		case EvTaskBegin, EvPark:
			name := spanNames[e.Type]
			if e.Type == EvTaskBegin && e.Arg == 1 {
				name = "task.range"
			}
			if e.Type == EvPark && e.Arg == 1 {
				name = "park.sema"
			}
			var args map[string]any
			if e.Job != 0 {
				args = map[string]any{"job": e.Job}
			}
			stacks[e.Worker] = append(stacks[e.Worker], open{name})
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Ph: "B", Ts: toMicros(e.Ts), Pid: chromePid, Tid: e.Worker,
				Args: args,
			})
		case EvTaskEnd, EvUnpark:
			st := stacks[e.Worker]
			if len(st) == 0 {
				continue // orphan end: its begin predates the ring
			}
			top := st[len(st)-1]
			stacks[e.Worker] = st[:len(st)-1]
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: top.name, Ph: "E", Ts: toMicros(e.Ts), Pid: chromePid, Tid: e.Worker,
			})
		default:
			name, args := instantName(e)
			if e.Job != 0 && e.Type != EvJobSwitch {
				if args == nil {
					args = map[string]any{}
				}
				args["job"] = e.Job
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Ph: "i", Ts: toMicros(e.Ts), Pid: chromePid, Tid: e.Worker,
				Scope: "t", Args: args,
			})
		}
	}
	// Per-job async spans: one "b"/"e" pair per settled job, keyed by the
	// job id so overlapping jobs get distinct tracks in the viewer.
	for _, js := range t.Jobs {
		name := fmt.Sprintf("job %d", js.ID)
		id := fmt.Sprintf("0x%x", js.ID)
		args := map[string]any{"id": js.ID, "class": js.Class}
		if js.Failed {
			args["failed"] = true
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Ph: "b", Ts: toMicros(js.Start), Pid: chromePid, Tid: 0,
			Cat: "job", ID: id, Args: args,
		})
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Ph: "e", Ts: toMicros(js.End), Pid: chromePid, Tid: 0,
			Cat: "job", ID: id,
		})
	}
	// Close dangling spans at the trace's end so viewers render them.
	for tid, st := range stacks {
		for i := len(st) - 1; i >= 0; i-- {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: st[i].name, Ph: "E", Ts: toMicros(lastTs), Pid: chromePid, Tid: tid,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// WriteChrome writes the trace to w in Chrome trace_event JSON.
func (t *Trace) WriteChrome(w io.Writer) error { return WriteChrome(w, t) }

// ValidateChrome checks that r holds a Chrome trace_event JSON object
// the viewers will accept: a non-empty traceEvents array in which every
// entry has the required name/ph/pid/tid fields and — for non-metadata
// phases — a ts, and in which every B has a matching E per thread. CI's
// trace-smoke job runs it over lcwsbench -trace output.
func ValidateChrome(r io.Reader) error {
	var f struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("trace: traceEvents is empty")
	}
	depth := map[int]int{}
	for i, e := range f.TraceEvents {
		var ph, name string
		if raw, ok := e["ph"]; !ok || json.Unmarshal(raw, &ph) != nil || ph == "" {
			return fmt.Errorf("trace: event %d: missing or invalid ph", i)
		}
		if raw, ok := e["name"]; !ok || json.Unmarshal(raw, &name) != nil || name == "" {
			return fmt.Errorf("trace: event %d: missing or invalid name", i)
		}
		for _, key := range []string{"pid", "tid"} {
			var n float64
			if raw, ok := e[key]; !ok || json.Unmarshal(raw, &n) != nil {
				return fmt.Errorf("trace: event %d (%s): missing or invalid %s", i, name, key)
			}
		}
		var ts float64
		if raw, ok := e["ts"]; !ok || json.Unmarshal(raw, &ts) != nil {
			if ph != "M" { // metadata events need no timestamp
				return fmt.Errorf("trace: event %d (%s, ph=%s): missing or invalid ts", i, name, ph)
			}
		}
		var tid float64
		if raw, ok := e["tid"]; ok {
			_ = json.Unmarshal(raw, &tid)
		}
		switch ph {
		case "B":
			depth[int(tid)]++
		case "E":
			depth[int(tid)]--
			if depth[int(tid)] < 0 {
				return fmt.Errorf("trace: event %d (%s): E without matching B on tid %d", i, name, int(tid))
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			return fmt.Errorf("trace: %d unclosed B span(s) on tid %d", d, tid)
		}
	}
	return nil
}
