// Package trace is the scheduler's flight recorder: a per-worker,
// fixed-capacity ring buffer of typed, timestamped events, written by the
// owning worker with plain stores and snapshotted by readers without
// locks or stop-the-world.
//
// # Owner path
//
// Recording an event costs one plain load (the freeze word), one clock
// read, two plain stores into the ring slot, and one atomic store that
// publishes the new write cursor. No fences or CAS are added to the
// scheduler's counting model: the recorder observes the algorithm, it
// does not participate in it. When tracing is disabled the scheduler
// holds no Recorder at all and every hook is a single nil check.
//
// # Snapshot protocol
//
// The write cursor is published with an atomic store after the slot's
// plain stores, so a reader that loads the cursor observes every slot
// below it fully written (release/acquire via the cursor). Wrap-around
// is the one hazard: the slot of event c (the in-flight event) aliases
// the slot of event c-cap. Snapshot therefore (1) sets the ring's freeze
// word, which makes the owner drop — not write — subsequent events,
// (2) loads the cursor c, and (3) reads events [c-cap+1, c), skipping
// the aliased oldest slot. Because the owner is sequential, at most one
// event can be mid-write when the freeze lands, and it writes exactly
// the skipped slot; every slot the reader touches is therefore stable
// and happens-before ordered, making concurrent snapshots race-detector
// clean. Events dropped by wrap-around or by the freeze window are
// counted, never silently lost.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lcws/internal/counters"
)

// EventType identifies one kind of flight-recorder event.
type EventType uint8

// The recorded event types. Arg/Arg2 meanings are noted per type.
const (
	// EvNone marks an unused slot; it never appears in a snapshot.
	EvNone EventType = iota
	// EvTaskBegin opens a task-run span on the recording worker. Arg is
	// the task kind: 0 = function task, 1 = range task.
	EvTaskBegin
	// EvTaskEnd closes the innermost task-run span.
	EvTaskEnd
	// EvFork marks a Fork2/ParFor split: the recording worker pushed a
	// forked task onto its own deque.
	EvFork
	// EvStealAttempt is a pop_top attempt against victim Arg.
	EvStealAttempt
	// EvStealHit is a successful steal from victim Arg; Arg2 is the
	// number of tasks claimed (1 for single steals, the batch size for
	// PopTopHalf/PopTopN claims).
	EvStealHit
	// EvExposeReq records that the recording thief set victim Arg's
	// targeted flag, asking it to expose work.
	EvExposeReq
	// EvSignalSend records an emulated pthread_kill to victim Arg.
	EvSignalSend
	// EvSignalHandle records the owner running the exposure handler;
	// Arg is the number of tasks exposed.
	EvSignalHandle
	// EvExpose records a task-boundary (flag-based) exposure by the
	// owner; Arg is the number of tasks exposed.
	EvExpose
	// EvPark opens an idle-blocking span: Arg 0 = blind backoff sleep,
	// 1 = parking-lot semaphore wait.
	EvPark
	// EvUnpark closes the idle-blocking span opened by EvPark.
	EvUnpark
	// EvDequeEmpty records the first fruitless local pop of an idle
	// episode (the transition from working to searching).
	EvDequeEmpty
	// EvRepair records an UnexposeAll reclaim; Arg is the number of
	// tasks pulled back from the public part.
	EvRepair
	// EvJobSwitch records the worker switching job context; Arg is the
	// new job id (0 = none). Events after a switch belong to that job
	// until the next switch; TraceSnapshot uses these markers to fill
	// the Job field of every event in between.
	EvJobSwitch
	// EvGrow records the owner doubling its deque's task array; Arg is
	// the new capacity in slots.
	EvGrow
	// EvSpill records the owner spilling tasks past its deque's maximum
	// capacity to the per-worker overflow list; Arg is the number of
	// tasks spilled.
	EvSpill
	// EvDuplicate records a duplicate execution claim absorbed by the
	// MultFree generation-stamp arbitration: the recording worker held a
	// relaxed-obtained task another claimant already won.
	EvDuplicate
	// EvResize records the recording worker adopting a new worker-set
	// snapshot (SetWorkers, demand growth, or idle retirement installed
	// it); Arg is the new live worker count.
	EvResize
	// EvRetire records the recording worker completing retirement: it was
	// shrunk out of the live set, drained, and is about to tear down its
	// slot's resources and exit.
	EvRetire

	numEventTypes
)

// NumEventTypes is the number of distinct event types.
const NumEventTypes = int(numEventTypes)

var eventTypeNames = [NumEventTypes]string{
	EvNone:         "none",
	EvTaskBegin:    "task.begin",
	EvTaskEnd:      "task.end",
	EvFork:         "fork",
	EvStealAttempt: "steal.attempt",
	EvStealHit:     "steal.hit",
	EvExposeReq:    "expose.request",
	EvSignalSend:   "signal.send",
	EvSignalHandle: "signal.handle",
	EvExpose:       "expose",
	EvPark:         "park",
	EvUnpark:       "unpark",
	EvDequeEmpty:   "deque.empty",
	EvRepair:       "repair",
	EvJobSwitch:    "job.switch",
	EvGrow:         "deque.grow",
	EvSpill:        "spill",
	EvDuplicate:    "duplicate",
	EvResize:       "pool.resize",
	EvRetire:       "pool.retire",
}

// String returns the dotted lowercase name of the event type.
func (t EventType) String() string {
	if int(t) >= NumEventTypes {
		return fmt.Sprintf("eventtype(%d)", uint8(t))
	}
	return eventTypeNames[t]
}

// Event is one decoded flight-recorder event.
type Event struct {
	// Ts is the event time in nanoseconds since the scheduler's trace
	// epoch (the moment the traced scheduler was created).
	Ts int64 `json:"ts"`
	// Worker is the id of the worker whose ring recorded the event.
	Worker int `json:"worker"`
	// Type is the event type.
	Type EventType `json:"type"`
	// Arg and Arg2 are the type-specific payloads (see the EventType
	// constants).
	Arg  uint32 `json:"arg"`
	Arg2 uint32 `json:"arg2,omitempty"`
	// Job is the id of the job the worker was serving when the event was
	// recorded (0 = none). It is not stored in the ring slot; snapshots
	// derive it from the surrounding EvJobSwitch markers.
	Job uint64 `json:"job,omitempty"`
}

// JobSpan is the submission-to-settlement interval of one job, for the
// Chrome export's per-job async spans. Start/End are trace times
// (nanoseconds since the scheduler's epoch).
type JobSpan struct {
	ID     uint64 `json:"id"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	Failed bool   `json:"failed,omitempty"`
	// Class is the job's QoS priority class index (0 = most urgent),
	// mirroring core.JobClass; rendered in the Chrome export's span
	// args so a starved tenant is visible in the viewer.
	Class uint8 `json:"class,omitempty"`
}

// Config configures the flight recorder of a scheduler.
type Config struct {
	// BufPerWorker is the per-worker ring capacity in events; it is
	// rounded up to a power of two. Non-positive selects
	// DefaultBufPerWorker. Each slot is 16 bytes.
	BufPerWorker int
}

// DefaultBufPerWorker is the default per-worker ring capacity (8192
// events = 128 KiB per worker).
const DefaultBufPerWorker = 8192

// normalized returns c with defaults applied and the capacity rounded up
// to a power of two.
func (c Config) normalized() Config {
	n := c.BufPerWorker
	if n <= 0 {
		n = DefaultBufPerWorker
	}
	p := 1
	for p < n {
		p <<= 1
	}
	c.BufPerWorker = p
	return c
}

// slot is one ring entry: a timestamp and a packed meta word
// (type in bits 56–63, arg2 in bits 32–55, arg in bits 0–31).
//
//lcws:manifest
type slot struct {
	ts   int64  //lcws:field thief-shared — owner plain-writes, published by the ring's wcur store
	meta uint64 //lcws:field thief-shared — same wcur publication protocol as ts
}

func packMeta(typ EventType, arg uint32, arg2 uint32) uint64 {
	return uint64(typ)<<56 | uint64(arg2&0xffffff)<<32 | uint64(arg)
}

func unpack(ts int64, meta uint64, worker int) Event {
	return Event{
		Ts:     ts,
		Worker: worker,
		Type:   EventType(meta >> 56),
		Arg:    uint32(meta),
		Arg2:   uint32(meta>>32) & 0xffffff,
	}
}

// ring is the owner-write event buffer of one worker.
//
//lcws:manifest
type ring struct {
	// buf/mask are fixed for the life of a worker-set epoch; only the
	// elastic pool's retire/regrow path (ReleaseRing, EnsureRing)
	// replaces them, under snapMu with the owner goroutine provably
	// exited — the epoch-guarded discipline (see core.workerSet).
	buf  []slot //lcws:field epoch-guarded — slots follow the slot manifest
	mask uint64 //lcws:field epoch-guarded
	// wcur is the next event index. The owner publishes it with an
	// atomic store after the slot's plain stores; a reader that loads
	// wcur therefore observes every event below it fully written.
	//
	//lcws:field atomic
	wcur atomic.Uint64
	// frozen gates the owner out of the ring while a snapshot reads it;
	// events arriving during the window are dropped and counted in
	// lostFrozen.
	//
	//lcws:field atomic
	frozen atomic.Bool
	//lcws:field atomic
	lostFrozen atomic.Uint64
	// snapMu serializes concurrent snapshots (readers only; the owner
	// never takes it).
	//
	//lcws:field atomic
	snapMu sync.Mutex
}

// Recorder is the per-worker flight recorder handle: the event ring,
// the online latency histograms, and the scratch state the latency
// derivations need. All methods except Snapshot are owner-only — they
// must be called from the owning worker's goroutine.
//
//lcws:manifest
type Recorder struct {
	ring      ring             //lcws:field thief-shared — the ring's own manifest governs each word
	epoch     time.Time        //lcws:field immutable
	ctr       *counters.Worker //lcws:field immutable
	capEvents int              //lcws:field immutable — configured ring capacity; EnsureRing restores to it

	hists [NumLatencies]atomicHist //lcws:field thief-shared — the atomicHist manifest governs each word

	// searchStart is the trace time at which the current steal search
	// began (0 = not searching); it anchors the steal-to-hit histogram.
	//
	//lcws:field owner
	searchStart int64
}

// NewRecorder returns a recorder with the given configuration. epoch is
// the shared trace epoch of the scheduler (all workers' timestamps are
// relative to it); ctr receives the TraceDrop counter increments.
func NewRecorder(cfg Config, epoch time.Time, ctr *counters.Worker) *Recorder {
	cfg = cfg.normalized()
	r := &Recorder{epoch: epoch, ctr: ctr, capEvents: cfg.BufPerWorker}
	//lcws:presync constructor: the recorder has not been published yet
	r.ring.buf = make([]slot, cfg.BufPerWorker)
	//lcws:presync constructor: the recorder has not been published yet
	r.ring.mask = uint64(cfg.BufPerWorker - 1)
	return r
}

// ReleaseRing shrinks the event ring to a single slot, releasing the
// buffer of a retired worker to the GC. The latency histograms are
// kept — they rejoin the scheduler's aggregates when the slot is
// re-admitted. The write cursor is reset so a regrown ring (EnsureRing)
// starts empty instead of decoding capacity-1 garbage slots; snapMu
// excludes a concurrent Snapshot for the swap.
//
// Epoch-guarded: callable only with the owner goroutine exited and the
// worker-set epoch quiesced (core.reclaimSlot).
//
//lcws:epoch-guarded
func (r *Recorder) ReleaseRing() {
	rg := &r.ring
	rg.snapMu.Lock()
	defer rg.snapMu.Unlock()
	if len(rg.buf) == 1 {
		return
	}
	// One slot, not zero: Snapshot's lo arithmetic divides by capacity
	// shape (c >= capacity), so an empty buffer would be a special case
	// everywhere; a single dead slot costs 16 bytes.
	rg.buf = make([]slot, 1)
	rg.mask = 0
	rg.wcur.Store(0)
}

// EnsureRing restores a released ring to its configured capacity; a
// no-op when the ring was never released. Called by the resizer before
// it re-admits (or first admits) the slot into a published worker set,
// so the owner goroutine only ever records into a full-size ring.
//
// Epoch-guarded: callable only while the slot is outside every
// published worker set (core.resizeLocked, under resizeMu).
//
//lcws:epoch-guarded
func (r *Recorder) EnsureRing() {
	rg := &r.ring
	rg.snapMu.Lock()
	defer rg.snapMu.Unlock()
	if len(rg.buf) == r.capEvents {
		return
	}
	rg.buf = make([]slot, r.capEvents)
	rg.mask = uint64(r.capEvents - 1)
	rg.wcur.Store(0)
}

// Cap returns the ring capacity in events.
func (r *Recorder) Cap() int { return len(r.ring.buf) }

// Now returns the current trace time: nanoseconds since the epoch.
func (r *Recorder) Now() int64 { return int64(time.Since(r.epoch)) }

// recordAt appends one event with a caller-supplied timestamp. Owner
// path: one plain load, two plain stores, one atomic cursor store. An
// event that overwrites a live slot (ring wrapped) or arrives while a
// snapshot has the ring frozen is accounted as a drop.
//
//lcws:noalloc
func (r *Recorder) recordAt(ts int64, typ EventType, arg uint32, arg2 uint32) {
	rg := &r.ring
	if rg.frozen.Load() {
		rg.lostFrozen.Add(1)
		r.ctr.Inc(counters.TraceDrop)
		return
	}
	w := rg.wcur.Load() // owner's own cursor: an uncontended load
	s := &rg.buf[w&rg.mask]
	s.ts = ts
	s.meta = packMeta(typ, arg, arg2)
	rg.wcur.Store(w + 1)
	if w >= uint64(len(rg.buf)) {
		// The slot held a live event that is now unrecoverable.
		r.ctr.Inc(counters.TraceDrop)
	}
}

// record appends one event stamped with the current trace time.
//
//lcws:noalloc
func (r *Recorder) record(typ EventType, arg uint32, arg2 uint32) {
	r.recordAt(r.Now(), typ, arg, arg2)
}

// ResetRun clears the per-run scratch state (not the ring or the
// histograms, which accumulate across runs like the counters). The
// scheduler calls it before each Run starts.
func (r *Recorder) ResetRun() { r.searchStart = 0 }

// TaskBegin opens a task-run span. kind is 0 for a function task, 1 for
// a range task.
func (r *Recorder) TaskBegin(kind uint32) { r.record(EvTaskBegin, kind, 0) }

// TaskEnd closes the innermost task-run span.
func (r *Recorder) TaskEnd() { r.record(EvTaskEnd, 0, 0) }

// Fork records a Fork2/ParFor split on the recording worker.
func (r *Recorder) Fork() { r.record(EvFork, 0, 0) }

// StealAttempt records a pop_top attempt against victim vid and starts
// the steal-to-hit clock if this is the first attempt of a search.
func (r *Recorder) StealAttempt(vid int) {
	ts := r.Now()
	if r.searchStart == 0 {
		r.searchStart = ts
	}
	r.recordAt(ts, EvStealAttempt, uint32(vid), 0)
}

// StealHit records a successful steal of n tasks from victim vid and
// closes the steal-to-hit clock into the LatStealToHit histogram.
func (r *Recorder) StealHit(vid, n int) {
	ts := r.Now()
	if r.searchStart != 0 {
		r.hists[LatStealToHit].observe(ts - r.searchStart)
		r.searchStart = 0
	}
	r.recordAt(ts, EvStealHit, uint32(vid), uint32(n))
}

// LocalWork notes that the worker obtained work from its own deque,
// ending any in-progress steal search without a hit.
func (r *Recorder) LocalWork() { r.searchStart = 0 }

// ExposeRequest records that the recording thief set victim vid's
// targeted flag; the returned trace time is what the thief stamps into
// the victim's request word so the victim can derive the
// flag-set-to-exposure latency.
func (r *Recorder) ExposeRequest(vid int) int64 {
	ts := r.Now()
	r.recordAt(ts, EvExposeReq, uint32(vid), 0)
	return ts
}

// SignalSend records an emulated signal to victim vid; the returned
// trace time is what the thief stamps into the victim's signal word.
func (r *Recorder) SignalSend(vid int) int64 {
	ts := r.Now()
	r.recordAt(ts, EvSignalSend, uint32(vid), 0)
	return ts
}

// SignalHandle records the owner's exposure handler running: n is the
// number of tasks exposed, sentTs the thief's SignalSend stamp (0 =
// none observed) and reqTs the thief's ExposeRequest stamp (0 = none).
// The send-to-handle latency is observed always; the
// flag-set-to-exposure latency only when the handler actually exposed
// work.
func (r *Recorder) SignalHandle(n int, sentTs, reqTs int64) {
	ts := r.Now()
	if sentTs > 0 {
		r.hists[LatSignalToHandle].observe(ts - sentTs)
	}
	if reqTs > 0 && n > 0 {
		r.hists[LatFlagToExpose].observe(ts - reqTs)
	}
	r.recordAt(ts, EvSignalHandle, uint32(n), 0)
}

// Exposed records a task-boundary (flag-based) exposure of n tasks.
// reqTs is the requesting thief's ExposeRequest stamp (0 = none).
func (r *Recorder) Exposed(n int, reqTs int64) {
	ts := r.Now()
	if reqTs > 0 && n > 0 {
		r.hists[LatFlagToExpose].observe(ts - reqTs)
	}
	r.recordAt(ts, EvExpose, uint32(n), 0)
}

// ParkStart opens an idle-blocking span (kind 0 = backoff sleep, 1 =
// semaphore park) and returns its start time for ParkEnd.
func (r *Recorder) ParkStart(kind uint32) int64 {
	ts := r.Now()
	r.recordAt(ts, EvPark, kind, 0)
	return ts
}

// ParkEnd closes the idle-blocking span opened at startTs and observes
// its duration into the LatPark histogram.
func (r *Recorder) ParkEnd(kind uint32, startTs int64) {
	ts := r.Now()
	r.hists[LatPark].observe(ts - startTs)
	r.recordAt(ts, EvUnpark, kind, 0)
}

// DequeEmpty records the working-to-searching transition.
func (r *Recorder) DequeEmpty() { r.record(EvDequeEmpty, 0, 0) }

// Repair records an UnexposeAll reclaim of n tasks.
func (r *Recorder) Repair(n int) { r.record(EvRepair, uint32(n), 0) }

// Grow records a deque growth to a new capacity of n slots.
func (r *Recorder) Grow(n int) { r.record(EvGrow, uint32(n), 0) }

// Spill records n tasks spilled to the worker's overflow list.
func (r *Recorder) Spill(n int) { r.record(EvSpill, uint32(n), 0) }

// Duplicate records an absorbed duplicate execution claim (MultFree).
func (r *Recorder) Duplicate() { r.record(EvDuplicate, 0, 0) }

// Resize records the worker adopting a worker-set snapshot with n live
// workers.
func (r *Recorder) Resize(n int) { r.record(EvResize, uint32(n), 0) }

// Retire records the worker completing its retirement (last event the
// worker records before its ring is released).
func (r *Recorder) Retire() { r.record(EvRetire, 0, 0) }

// JobSwitch records the worker switching to job id (0 = leaving job
// context). Owner-only, like every recording method.
func (r *Recorder) JobSwitch(id uint32) { r.record(EvJobSwitch, id, 0) }

// Hist returns a copy of latency histogram which (a Lat* index).
func (r *Recorder) Hist(which int) Histogram { return r.hists[which].snapshot() }

// ResetHists zeroes the latency histograms. Like counter resets it is
// exact only while the owning worker is not running.
func (r *Recorder) ResetHists() {
	for i := range r.hists {
		r.hists[i].reset()
	}
}

// Tail returns up to n most recent events of the ring, oldest first.
// Owner-only: it reads the ring with plain loads from the owning
// goroutine (the panic path uses it to attach recent history to the
// crash report).
func (r *Recorder) Tail(n int) []Event {
	c := r.ring.wcur.Load()
	lo := uint64(0)
	if c > uint64(len(r.ring.buf)) {
		lo = c - uint64(len(r.ring.buf))
	}
	if c-lo > uint64(n) {
		lo = c - uint64(n)
	}
	out := make([]Event, 0, c-lo)
	for i := lo; i < c; i++ {
		s := &r.ring.buf[i&r.ring.mask]
		out = append(out, unpack(s.ts, s.meta, -1))
	}
	return out
}

// Snapshot decodes the ring's events, oldest first, tagging each with
// worker id. It is safe to call from any goroutine, concurrently with
// the owner recording: the ring is frozen for the duration (the owner
// drops events instead of writing, and those drops are counted), the
// cursor load orders every returned slot's plain stores before the
// reads, and the one slot the in-flight event may alias is skipped.
// dropped is the total number of events lost to wrap-around and freeze
// windows since the recorder was created.
func (r *Recorder) Snapshot(worker int) (events []Event, dropped uint64) {
	rg := &r.ring
	rg.snapMu.Lock()
	defer rg.snapMu.Unlock()

	rg.frozen.Store(true)
	c := rg.wcur.Load()
	capacity := uint64(len(rg.buf))
	lo := uint64(0)
	if c >= capacity {
		// The owner may be mid-write of event c, whose slot aliases
		// event c-cap: skip it. Everything older was overwritten.
		lo = c - capacity + 1
	}
	events = make([]Event, 0, c-lo)
	for i := lo; i < c; i++ {
		s := &rg.buf[i&rg.mask]
		events = append(events, unpack(s.ts, s.meta, worker))
	}
	dropped = lo + rg.lostFrozen.Load()
	rg.frozen.Store(false)
	return events, dropped
}
