package trace

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"lcws/internal/counters"
)

func newTestRecorder(capacity int) *Recorder {
	return NewRecorder(Config{BufPerWorker: capacity}, time.Now(), counters.NewSet(1).Worker(0))
}

func TestConfigNormalized(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultBufPerWorker}, {-5, DefaultBufPerWorker},
		{1, 1}, {3, 4}, {4, 4}, {1000, 1024},
	} {
		if got := (Config{BufPerWorker: tc.in}).normalized().BufPerWorker; got != tc.want {
			t.Errorf("normalized(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestMetaRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		typ       EventType
		arg, arg2 uint32
	}{
		{EvStealHit, 0, 0},
		{EvStealHit, 7, 13},
		{EvExposeReq, 0xffffffff, 0xffffff}, // arg full width, arg2 24 bits
		{EvRepair, 12345, 0},
	} {
		e := unpack(42, packMeta(tc.typ, tc.arg, tc.arg2), 3)
		if e.Type != tc.typ || e.Arg != tc.arg || e.Arg2 != tc.arg2 || e.Ts != 42 || e.Worker != 3 {
			t.Errorf("round trip %v/%d/%d: got %+v", tc.typ, tc.arg, tc.arg2, e)
		}
	}
}

func TestSnapshotBasic(t *testing.T) {
	r := newTestRecorder(64)
	r.Fork()
	r.StealAttempt(2)
	r.StealHit(2, 3)
	events, dropped := r.Snapshot(5)
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	want := []EventType{EvFork, EvStealAttempt, EvStealHit}
	for i, e := range events {
		if e.Type != want[i] {
			t.Errorf("event %d type = %v, want %v", i, e.Type, want[i])
		}
		if e.Worker != 5 {
			t.Errorf("event %d worker = %d, want 5", i, e.Worker)
		}
		if i > 0 && e.Ts < events[i-1].Ts {
			t.Errorf("timestamps not monotone at %d: %d < %d", i, e.Ts, events[i-1].Ts)
		}
	}
	if events[2].Arg != 2 || events[2].Arg2 != 3 {
		t.Errorf("steal.hit args = %d/%d, want 2/3", events[2].Arg, events[2].Arg2)
	}
}

// TestWrapAround drives the ring far past capacity and checks that the
// snapshot returns only the newest cap-1 events (oldest dropped), that
// the drop counter accounts for every lost event, and that no event is
// torn (every decoded event is exactly what the owner wrote).
func TestWrapAround(t *testing.T) {
	const capacity = 8
	r := newTestRecorder(capacity)
	const total = 100
	for i := 0; i < total; i++ {
		r.recordAt(int64(i), EvFork, uint32(i), 0)
	}
	events, dropped := r.Snapshot(0)
	if len(events) != capacity-1 {
		t.Fatalf("got %d events, want %d (cap-1: the aliased oldest slot is skipped)", len(events), capacity-1)
	}
	wantDropped := uint64(total - (capacity - 1))
	if dropped != wantDropped {
		t.Fatalf("dropped = %d, want %d", dropped, wantDropped)
	}
	for i, e := range events {
		wantArg := uint32(total - (capacity - 1) + i)
		if e.Type != EvFork || e.Arg != wantArg || e.Ts != int64(wantArg) {
			t.Errorf("event %d = %+v, want fork arg=%d ts=%d (torn or misordered)", i, e, wantArg, wantArg)
		}
	}
	// The wrap drops are also visible in the owner's counter.
	if got := r.ctr.Get(counters.TraceDrop); got != uint64(total-capacity) {
		t.Errorf("TraceDrop counter = %d, want %d (overwritten live slots)", got, total-capacity)
	}
}

// TestFreezeDrops verifies that events recorded while a snapshot has
// the ring frozen are dropped and counted, never written.
func TestFreezeDrops(t *testing.T) {
	r := newTestRecorder(64)
	r.Fork()
	r.ring.frozen.Store(true)
	r.Fork()
	r.Fork()
	r.ring.frozen.Store(false)
	events, dropped := r.Snapshot(0)
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1 (frozen-window events must not land)", len(events))
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if got := r.ctr.Get(counters.TraceDrop); got != 2 {
		t.Errorf("TraceDrop counter = %d, want 2", got)
	}
}

// TestConcurrentSnapshot hammers Snapshot from several goroutines while
// the owner records; under -race this is the core freeze-protocol
// check. Every returned event must be well-formed (untorn).
func TestConcurrentSnapshot(t *testing.T) {
	r := newTestRecorder(32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				events, _ := r.Snapshot(0)
				for _, e := range events {
					if e.Type != EvStealHit || e.Arg != uint32(e.Ts) || e.Arg2 != uint32(e.Ts)&0xffff {
						t.Errorf("torn event: %+v", e)
						return
					}
				}
			}
		}()
	}
	for i := int64(1); i < 50000; i++ {
		r.recordAt(i, EvStealHit, uint32(i), uint32(i)&0xffff)
	}
	close(stop)
	wg.Wait()
}

func TestStealLatencyObservation(t *testing.T) {
	r := newTestRecorder(64)
	r.StealAttempt(1)
	r.StealAttempt(2)
	r.StealHit(2, 1)
	h := r.Hist(LatStealToHit)
	if h.Count != 1 {
		t.Fatalf("steal-to-hit count = %d, want 1", h.Count)
	}
	// A hit with no preceding attempt must not observe.
	r.StealHit(3, 1)
	if got := r.Hist(LatStealToHit).Count; got != 1 {
		t.Fatalf("count after attempt-less hit = %d, want 1", got)
	}
	// LocalWork cancels a search.
	r.StealAttempt(1)
	r.LocalWork()
	r.StealHit(1, 1)
	if got := r.Hist(LatStealToHit).Count; got != 1 {
		t.Fatalf("count after cancelled search = %d, want 1", got)
	}
}

func TestSignalAndExposeLatencies(t *testing.T) {
	r := newTestRecorder(64)
	sent := r.SignalSend(1)
	req := r.ExposeRequest(1)
	r.SignalHandle(2, sent, req)
	if got := r.Hist(LatSignalToHandle).Count; got != 1 {
		t.Errorf("signal-to-handle count = %d, want 1", got)
	}
	if got := r.Hist(LatFlagToExpose).Count; got != 1 {
		t.Errorf("flag-to-exposure count = %d, want 1", got)
	}
	// Handler that exposed nothing: no flag-to-exposure sample.
	r.SignalHandle(0, sent, req)
	if got := r.Hist(LatFlagToExpose).Count; got != 1 {
		t.Errorf("flag-to-exposure count after empty handle = %d, want 1", got)
	}
	r.Exposed(1, req)
	if got := r.Hist(LatFlagToExpose).Count; got != 2 {
		t.Errorf("flag-to-exposure count after Exposed = %d, want 2", got)
	}
	// Zero stamps mean "no request observed": no samples.
	r.SignalHandle(1, 0, 0)
	if got := r.Hist(LatSignalToHandle).Count; got != 2 {
		t.Errorf("signal-to-handle count after stampless handle = %d, want 2", got)
	}
}

func TestParkLatency(t *testing.T) {
	r := newTestRecorder(64)
	start := r.ParkStart(1)
	r.ParkEnd(1, start)
	h := r.Hist(LatPark)
	if h.Count != 1 {
		t.Fatalf("park count = %d, want 1", h.Count)
	}
	events, _ := r.Snapshot(0)
	if len(events) != 2 || events[0].Type != EvPark || events[1].Type != EvUnpark {
		t.Fatalf("events = %+v, want [park unpark]", events)
	}
}

func TestTail(t *testing.T) {
	r := newTestRecorder(8)
	for i := 0; i < 20; i++ {
		r.recordAt(int64(i), EvFork, uint32(i), 0)
	}
	tail := r.Tail(3)
	if len(tail) != 3 {
		t.Fatalf("tail length = %d, want 3", len(tail))
	}
	for i, e := range tail {
		if want := uint32(17 + i); e.Arg != want {
			t.Errorf("tail[%d].Arg = %d, want %d", i, e.Arg, want)
		}
	}
	if got := len(r.Tail(100)); got != 8 {
		t.Errorf("tail(100) length = %d, want 8 (ring capacity)", got)
	}
}

func TestHistogramMath(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	samples := []int64{100, 200, 400, 800, 1600}
	for _, s := range samples {
		h.Observe(s)
	}
	if h.Count != 5 || h.Sum != 3100 || h.Min != 100 || h.Max != 1600 {
		t.Fatalf("h = %+v", h)
	}
	if m := h.Mean(); m != 620 {
		t.Errorf("mean = %v, want 620", m)
	}
	if q := h.Quantile(0.5); q < 100 || q > 1600 {
		t.Errorf("p50 = %d out of sample range", q)
	}
	if h.Quantile(0) != 100 || h.Quantile(1) != 1600 {
		t.Errorf("extreme quantiles: p0=%d p100=%d", h.Quantile(0), h.Quantile(1))
	}
	h.Observe(-50) // clock anomaly clamps to 0
	if h.Min != 0 || h.Count != 6 {
		t.Errorf("after negative observe: min=%d count=%d", h.Min, h.Count)
	}

	var other Histogram
	other.Observe(10)
	merged := h.Add(other)
	if merged.Count != 7 || merged.Min != 0 || merged.Max != 1600 {
		t.Errorf("merged = %+v", merged)
	}
	empty := Histogram{}.Add(other)
	if empty.Count != 1 || empty.Min != 10 || empty.Max != 10 {
		t.Errorf("empty.Add = %+v", empty)
	}

	delta := merged.Sub(other)
	if delta.Count != 6 {
		t.Errorf("delta count = %d, want 6", delta.Count)
	}
	zero := other.Sub(merged) // clamped, not wrapped
	if zero.Count != 0 || zero.Min != 0 || zero.Max != 0 {
		t.Errorf("clamped delta = %+v", zero)
	}
}

func TestResetHists(t *testing.T) {
	r := newTestRecorder(8)
	start := r.ParkStart(0)
	r.ParkEnd(0, start)
	r.ResetHists()
	if got := r.Hist(LatPark).Count; got != 0 {
		t.Fatalf("count after reset = %d, want 0", got)
	}
}

func TestChromeWriteValidateRoundTrip(t *testing.T) {
	r := newTestRecorder(64)
	r.TaskBegin(0)
	r.Fork()
	r.StealAttempt(1)
	r.TaskEnd()
	start := r.ParkStart(1)
	r.ParkEnd(1, start)
	r.TaskBegin(1) // left dangling: the balancing pass must close it
	events, dropped := r.Snapshot(0)

	tr := &Trace{Policy: "Signal", Workers: 2, Dropped: dropped, Events: events}
	tr.Latencies[LatPark] = r.Hist(LatPark)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := ValidateChrome(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ValidateChrome rejected our own output: %v\n%s", err, buf.String())
	}
}

// TestChromeOrphanEnd feeds a stream whose first event is a span end
// (its begin fell off the ring); the writer must drop it, and the
// validator must accept the result.
func TestChromeOrphanEnd(t *testing.T) {
	tr := &Trace{
		Policy: "WS", Workers: 1,
		Events: []Event{
			{Ts: 10, Worker: 0, Type: EvTaskEnd},
			{Ts: 20, Worker: 0, Type: EvTaskBegin},
			{Ts: 30, Worker: 0, Type: EvTaskEnd},
		},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := ValidateChrome(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}
}

func TestValidateChromeRejects(t *testing.T) {
	for name, payload := range map[string]string{
		"empty":      `{"traceEvents":[]}`,
		"not json":   `{`,
		"missing ph": `{"traceEvents":[{"name":"x","ts":1,"pid":1,"tid":0}]}`,
		"missing ts": `{"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":0}]}`,
		"orphan E":   `{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":0}]}`,
		"unclosed B": `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":0}]}`,
	} {
		if err := ValidateChrome(bytes.NewReader([]byte(payload))); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestEventTypeNames(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumEventTypes; i++ {
		name := EventType(i).String()
		if name == "" || seen[name] {
			t.Errorf("event type %d: empty or duplicate name %q", i, name)
		}
		seen[name] = true
	}
}
