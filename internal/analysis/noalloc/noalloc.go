// Package noalloc turns the runtime AllocsPerRun gates into static,
// line-precise ones.
//
// A function annotated //lcws:noalloc in its doc comment declares that
// its body stays off the heap — the contract of the scheduler's fast
// paths (push/pop/steal, fork, recycle, trace record), whose whole
// point per the paper is that the owner's common case costs a handful
// of plain loads and stores. The analyzer flags every
// allocation-introducing construct in such a body:
//
//   - composite literals and the make/new builtins;
//   - function literals (closure environments allocate);
//   - append (growth allocates);
//   - conversions to interface types, explicit or implicit at a call's
//     arguments (boxing allocates);
//   - string concatenation, string<->[]byte/[]rune conversions, map
//     writes;
//   - go statements (a new goroutine is anything but allocation-free);
//   - fmt calls (variadic boxing + internal buffers).
//
// Two escapes keep the gate precise rather than performative:
// constructs inside a panic(...) argument are exempt — a panicking
// fast path is already off the fast path — and a //lcws:allocok
// comment on (or directly above) a line exempts that line, for
// documented cold paths like the freelist-miss &Task{} fallback.
//
// The static gate is deliberately stricter than the dynamic one:
// escape analysis might prove some flagged construct stack-allocatable
// today, but the gate pins the property the benchmarks rely on instead
// of the optimizer's current mood.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lcws/internal/analysis"
)

// Annotation marks a function whose body must not allocate; AllocOK
// marks an audited line as a documented cold-path exception.
const (
	Annotation = "//lcws:noalloc"
	AllocOK    = "//lcws:allocok"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "check that functions annotated " + Annotation + " contain no allocation-introducing constructs\n\n" +
		"The scheduler's fast paths promise a handful of plain loads and stores; this " +
		"analyzer statically flags composite literals, closures, make/new/append, " +
		"interface boxing, string/map operations and go statements inside them. " +
		"panic(...) arguments are exempt (terminal path), and " + AllocOK + " exempts a " +
		"documented cold-path line.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !groupHasMarker(fd.Doc, Annotation) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

// checkBody walks one annotated function body.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isPanicCall(pass, call) {
			// The whole argument tree is terminal-path.
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			report(pass, fd, n.Pos(), "function literal allocates its closure environment")
			return false
		case *ast.CompositeLit:
			report(pass, fd, n.Pos(), "composite literal may allocate")
			return false
		case *ast.GoStmt:
			report(pass, fd, n.Pos(), "go statement allocates a goroutine")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypesInfo.TypeOf(n)) {
				report(pass, fd, n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if _, isMap := typeUnder(pass.TypesInfo.TypeOf(ix.X)).(*types.Map); isMap {
						report(pass, fd, ix.Pos(), "map assignment may allocate")
					}
				}
			}
		case *ast.CallExpr:
			checkCall(pass, fd, n)
		}
		return true
	})
}

// checkCall flags allocating builtins, conversions that box, fmt
// calls, and implicit interface conversions at arguments.
func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				report(pass, fd, call.Pos(), b.Name()+" allocates")
			case "append":
				report(pass, fd, call.Pos(), "append may grow and allocate")
			}
			return
		}
	}
	// Explicit conversions: T(x).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := pass.TypesInfo.TypeOf(call)
		from := pass.TypesInfo.TypeOf(call.Args[0])
		if isInterface(to) && from != nil && !isInterface(from) {
			report(pass, fd, call.Pos(), "conversion to interface type boxes its operand")
		}
		if allocatingStringConversion(to, from) {
			report(pass, fd, call.Pos(), "string/byte-slice conversion copies and allocates")
		}
		return
	}
	// fmt calls: variadic boxing plus internal buffers.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				report(pass, fd, call.Pos(), "fmt call allocates")
				return
			}
		}
	}
	// Implicit interface conversions at arguments.
	sig, ok := typeUnder(pass.TypesInfo.TypeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || isInterface(at) {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
			continue
		}
		report(pass, fd, arg.Pos(), "argument is implicitly converted to an interface and may box")
	}
}

// report emits a diagnostic unless the line carries (or follows) an
// //lcws:allocok exemption.
func report(pass *analysis.Pass, fd *ast.FuncDecl, pos token.Pos, msg string) {
	if hasLineComment(pass, pos, AllocOK) {
		return
	}
	pass.Reportf(pos, "%s function %s: %s", Annotation, fd.Name.Name, msg)
}

// isPanicCall reports whether call invokes the panic builtin.
func isPanicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func isString(t types.Type) bool {
	b, ok := typeUnder(t).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterface(t types.Type) bool {
	_, ok := typeUnder(t).(*types.Interface)
	return ok
}

// allocatingStringConversion reports string<->[]byte / []rune
// conversions, which copy.
func allocatingStringConversion(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isString(from))
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := typeUnder(t).(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return analysis.Deref(t).Underlying()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// groupHasMarker reports whether any comment line in cg starts with
// marker.
func groupHasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, marker) {
			return true
		}
	}
	return false
}

// hasLineComment reports whether a comment starting with marker sits
// on pos's line or the line directly above it.
func hasLineComment(pass *analysis.Pass, pos token.Pos, marker string) bool {
	p := pass.Fset.Position(pos)
	for _, f := range pass.Files {
		if pass.Fset.Position(f.Pos()).Filename != p.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, marker) {
					continue
				}
				cl := pass.Fset.Position(c.Pos()).Line
				if cl == p.Line || cl == p.Line-1 {
					return true
				}
			}
		}
	}
	return false
}
