package noalloc_test

import (
	"testing"

	"lcws/internal/analysis/analysistest"
	"lcws/internal/analysis/noalloc"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "lcws/internal/deque")
}
