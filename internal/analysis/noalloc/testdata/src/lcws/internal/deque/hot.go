// Package deque is a stand-in exercising the noalloc analyzer on the
// shape of the scheduler's fast paths.
package deque

import "fmt"

type Task struct{ next *Task }

type SplitDeque struct {
	buf      []*Task
	bot      int
	freelist *Task
	m        map[int]int
}

// PushBottom is the owner's push fast path: plain stores only; the
// overflow panic is terminal and exempt, fmt and all.
//
//lcws:noalloc
func (d *SplitDeque) PushBottom(t *Task) {
	if d.bot == len(d.buf) {
		panic(fmt.Sprintf("deque: overflow at %d", d.bot)) // ok: panic path
	}
	d.buf[d.bot] = t
	d.bot++
}

// newTask pops the freelist, falling back to the heap on a miss; the
// fallback is a documented cold path.
//
//lcws:noalloc
func (d *SplitDeque) newTask() *Task {
	if t := d.freelist; t != nil {
		d.freelist = t.next
		t.next = nil
		return t
	}
	//lcws:allocok cold path: freelist miss falls back to the heap
	return &Task{}
}

// bad aggregates one seeded violation per flagged construct.
//
//lcws:noalloc
func (d *SplitDeque) bad(t *Task, s string) {
	d.buf = append(d.buf, t) // want `append may grow and allocate`
	x := &Task{}             // want `composite literal may allocate`
	_ = x
	f := func() {} // want `function literal allocates its closure environment`
	_ = f
	b := make([]int, 4) // want `make allocates`
	_ = b
	i := any(t) // want `conversion to interface type boxes its operand`
	_ = i
	d.m[1] = 2    // want `map assignment may allocate`
	s2 := s + "x" // want `string concatenation allocates`
	_ = s2
	bs := []byte(s) // want `string/byte-slice conversion copies and allocates`
	_ = bs
	go d.PushBottom(t) // want `go statement allocates a goroutine`
	sink(t)            // want `argument is implicitly converted to an interface and may box`
}

// grow is unannotated: allocation is its job, no findings.
func (d *SplitDeque) grow() {
	d.buf = append(d.buf, nil)
}

func sink(v any) {}
