// Package analysistest runs an analyzer over packages rooted in a
// testdata/src tree and checks its diagnostics against `// want`
// comments, following the golang.org/x/tools/go/analysis/analysistest
// conventions: a comment of the form
//
//	x.dq.PushBottom(t) // want `owner-only method`
//
// declares that the analyzer must report a diagnostic on that line
// whose message matches the back-quoted (or double-quoted) regular
// expression. Every diagnostic must be wanted and every want must be
// matched, otherwise the test fails.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"lcws/internal/analysis"
)

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each package path from <testdata>/src, applies the
// analyzer, and checks diagnostics against the packages' `// want`
// comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	loader, err := analysis.NewOverlayLoader(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgs, err := loader.Load(pkgpaths...)
	if err != nil {
		t.Fatalf("analysistest: loading %v: %v", pkgpaths, err)
	}
	diags, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ws, err := collectWants(loader.Fset, f)
			if err != nil {
				t.Fatalf("analysistest: %v", err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation on (file, line) whose
// pattern matches msg, reporting whether one was found.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts `// want` expectations from a file's comments.
func collectWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			pats, err := splitPatterns(strings.TrimSpace(text))
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
			}
		}
	}
	return out, nil
}

// splitPatterns parses a sequence of Go string literals ("..." or
// `...`) from a want comment's payload.
func splitPatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want pattern must be a quoted string, got %q", s)
		}
		i := 1
		for i < len(s) && s[i] != quote {
			if quote == '"' && s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		lit := s[:i+1]
		s = s[i+1:]
		p, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want literal %s: %v", lit, err)
		}
		out = append(out, p)
	}
}
