// Package core is a miniature stand-in for lcws/internal/core with
// seeded owneronly violations. The import path (via the testdata/src
// overlay) matches the real package, so the analyzer's field
// identification applies unchanged.
package core

import "unsafe"

type taskDeque interface {
	PushBottom(int)
	PopBottom() int
	PopPublicBottom() int
	PopTop() int
	PopTopHalf([]int) int
	Expose() int
	UnexposeAll() int
	HasTwoTasks() bool
	HasPublicWork() bool
	IsEmpty() bool
	Teardown()
	Mystery()
}

type Task struct {
	next *Task
}

// Recorder stands in for internal/trace.Recorder: owner-path recording
// methods plus the thief-safe snapshot readers.
type Recorder struct{}

func (r *Recorder) Fork()                               {}
func (r *Recorder) TaskEnd()                            {}
func (r *Recorder) JobSwitch(id uint32)                 {}
func (r *Recorder) Tail(n int) []int                    { return nil }
func (r *Recorder) Snapshot(worker int) ([]int, uint64) { return nil, 0 }
func (r *Recorder) Hist(which int) int                  { return 0 }
func (r *Recorder) ResetHists()                         {}
func (r *Recorder) ReleaseRing()                        {}
func (r *Recorder) EnsureRing()                         {}
func (r *Recorder) Mystery()                            {}

type Job struct{ id uint64 }
type jobShard struct{ created, completed uint64 }

type Worker struct {
	id       int
	dq       taskDeque
	freelist *Task
	rec      *Recorder
	curJob   *Job
	curShard *jobShard
}

func NewWorker(dq taskDeque) *Worker {
	w := &Worker{}
	w.dq = dq           // ok: initialization write before the owner goroutine starts
	w.rec = &Recorder{} // ok: initialization write
	return w
}

func (w *Worker) ownerLoop() int {
	w.dq.PushBottom(1)
	if w.dq.IsEmpty() {
		return 0
	}
	return w.dq.PopBottom()
}

func (w *Worker) steal(v *Worker) int {
	if v.dq.HasTwoTasks() { // ok: thief-safe on a victim
		return v.dq.PopTop()
	}
	return 0
}

func (w *Worker) stealBatch(v *Worker, buf []int) int {
	if !v.dq.HasPublicWork() { // ok: thief-safe parking-lot pre-check on a victim
		return 0
	}
	n := v.dq.PopTopHalf(buf) // ok: the batched claim is thief-safe (single CAS)
	for i := 1; i < n; i++ {
		w.dq.PushBottom(buf[i]) // ok: the remnant lands in the thief's own deque
	}
	return n
}

func (w *Worker) badVictim(v *Worker) int {
	return v.dq.PopBottom() // want `owner-only deque method PopBottom called on v, which is not the owning receiver w`
}

func (w *Worker) badBatchLanding(v *Worker, task int) {
	v.dq.PushBottom(task) // want `owner-only deque method PushBottom called on v, which is not the owning receiver w`
}

func (w *Worker) badClosure() func() {
	return func() {
		w.dq.Expose() // want `owner-only deque method Expose called inside a function literal`
	}
}

func (w *Worker) badAlias() {
	d := w.dq // want `dq field must not be aliased`
	_ = d
}

func (w *Worker) badMethodValue() func() int {
	return w.dq.PopPublicBottom // want `must be called directly, not bound as a method value`
}

func (w *Worker) unclassified() {
	w.dq.Mystery() // want `not classified as owner-only, thief-safe, or epoch-guarded`
}

func (w *Worker) newTask() *Task { // ok: owner-local freelist pop on the receiver
	t := w.freelist
	if t == nil {
		return &Task{}
	}
	w.freelist = t.next
	t.next = nil
	return t
}

func (w *Worker) layoutQuery() uintptr {
	return unsafe.Offsetof(w.dq) + unsafe.Offsetof(w.freelist) // ok: Offsetof does not evaluate its operand
}

func (w *Worker) badFreelistVictim(v *Worker) *Task {
	return v.freelist // want `owner-only field freelist accessed on v, which is not the owning receiver w`
}

func (w *Worker) badFreelistClosure() func() {
	return func() {
		w.freelist = nil // want `owner-only field freelist accessed inside a function literal`
	}
}

func (w *Worker) badFreelistAddr() **Task {
	return &w.freelist // want `freelist field must not have its address taken`
}

func badFreelistFree(w *Worker, t *Task) {
	t.next = w.freelist // want `owner-only field freelist accessed outside a Worker method`
	w.freelist = t      // want `owner-only field freelist accessed outside a Worker method`
}

func (w *Worker) setJob(j *Job, sh *jobShard) { // ok: owner-local job-context switch
	w.curJob = j
	w.curShard = sh
	if w.rec != nil {
		w.rec.JobSwitch(0) // ok: owner-path recording on the receiver
	}
}

func (w *Worker) pushTag() *Job { // ok: owner-local reads on the receiver
	if sh := w.curShard; sh != nil {
		sh.created++
	}
	return w.curJob
}

func (w *Worker) badJobVictim(v *Worker) *Job {
	return v.curJob // want `owner-only field curJob accessed on v, which is not the owning receiver w`
}

func (w *Worker) badShardClosure() func() {
	return func() {
		w.curShard = nil // want `owner-only field curShard accessed inside a function literal`
	}
}

func (w *Worker) badJobAddr() **Job {
	return &w.curJob // want `curJob field must not have its address taken`
}

func badJobFreeFunction(w *Worker) {
	w.curShard = nil // want `owner-only field curShard accessed outside a Worker method`
}

func (w *Worker) badRecJobVictim(v *Worker) {
	v.rec.JobSwitch(1) // want `owner-only recorder method JobSwitch called on v, which is not the owning receiver w`
}

func (w *Worker) traceFork() {
	if w.rec != nil { // ok: nil comparison is the disabled-tracing fast path
		w.rec.Fork() // ok: owner-path recording on the receiver
	}
}

func (w *Worker) taskDone() {
	w.rec.TaskEnd()   // ok: named deferred method, still the receiver
	_ = w.rec.Tail(4) // ok: owner-side tail read for a panic report
}

func (w *Worker) badRecVictim(v *Worker) {
	v.rec.Fork() // want `owner-only recorder method Fork called on v, which is not the owning receiver w`
}

func (w *Worker) badRecClosure() func() {
	return func() {
		w.rec.TaskEnd() // want `owner-only recorder method TaskEnd called inside a function literal`
	}
}

func (w *Worker) badRecAlias() {
	r := w.rec // want `rec field must not be aliased, passed, or compared`
	_ = r
}

func (w *Worker) badRecMethodValue() func() {
	return w.rec.Fork // want `owner-only recorder method Fork must be called directly, not bound as a method value`
}

func (w *Worker) unclassifiedRec() {
	w.rec.Mystery() // want `recorder method Mystery is not classified as owner-only, thief-safe, or epoch-guarded`
}

type Scheduler struct{ workers []*Worker }

func (s *Scheduler) badFromScheduler() {
	s.workers[0].dq.UnexposeAll() // want `owner-only deque method UnexposeAll called outside a Worker method`
}

func (s *Scheduler) goodSnapshotFromScheduler() ([]int, uint64) {
	if s.workers[0].rec == nil { // ok: nil comparison from any goroutine
		return nil, 0
	}
	s.workers[0].rec.ResetHists()       // ok: thief-safe
	_ = s.workers[0].rec.Hist(0)        // ok: thief-safe
	return s.workers[0].rec.Snapshot(0) // ok: freeze-protocol reader is thief-safe
}

func badRecFreeFunction(w *Worker) {
	w.rec.TaskEnd() // want `owner-only recorder method TaskEnd called outside a Worker method`
}

// reclaimSlot mimics the elastic pool's reclamation path: epoch-guarded
// calls are licensed by the directive below, from any goroutine.
//
//lcws:epoch-guarded — quiescence proved by the caller (test stand-in)
func (s *Scheduler) reclaimSlot(w *Worker) {
	w.dq.Teardown()     // ok: epoch-guarded call under the directive
	w.rec.ReleaseRing() // ok: epoch-guarded call under the directive
	w.rec.EnsureRing()  // ok: epoch-guarded call under the directive
}

func (s *Scheduler) badReclaimNoDirective(w *Worker) {
	w.dq.Teardown()     // want `epoch-guarded deque method Teardown called outside a function carrying the //lcws:epoch-guarded quiescence directive`
	w.rec.ReleaseRing() // want `epoch-guarded recorder method ReleaseRing called outside a function carrying the //lcws:epoch-guarded quiescence directive`
}

//lcws:epoch-guarded — the directive does not reach into closures
func (s *Scheduler) badReclaimClosure(w *Worker) func() {
	return func() {
		w.dq.Teardown() // want `epoch-guarded deque method Teardown called inside a function literal`
	}
}

func badFreeFunction(w *Worker) {
	w.dq.PushBottom(2) // want `owner-only deque method PushBottom called outside a Worker method`
}
