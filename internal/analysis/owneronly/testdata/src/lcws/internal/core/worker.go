// Package core is a miniature stand-in for lcws/internal/core with
// seeded owneronly violations. The import path (via the testdata/src
// overlay) matches the real package, so the analyzer's field
// identification applies unchanged.
package core

import "unsafe"

type taskDeque interface {
	PushBottom(int)
	PopBottom() int
	PopPublicBottom() int
	PopTop() int
	PopTopHalf([]int) int
	Expose() int
	UnexposeAll() int
	HasTwoTasks() bool
	HasPublicWork() bool
	IsEmpty() bool
	Mystery()
}

type Task struct {
	next *Task
}

type Worker struct {
	id       int
	dq       taskDeque
	freelist *Task
}

func NewWorker(dq taskDeque) *Worker {
	w := &Worker{}
	w.dq = dq // ok: initialization write before the owner goroutine starts
	return w
}

func (w *Worker) ownerLoop() int {
	w.dq.PushBottom(1)
	if w.dq.IsEmpty() {
		return 0
	}
	return w.dq.PopBottom()
}

func (w *Worker) steal(v *Worker) int {
	if v.dq.HasTwoTasks() { // ok: thief-safe on a victim
		return v.dq.PopTop()
	}
	return 0
}

func (w *Worker) stealBatch(v *Worker, buf []int) int {
	if !v.dq.HasPublicWork() { // ok: thief-safe parking-lot pre-check on a victim
		return 0
	}
	n := v.dq.PopTopHalf(buf) // ok: the batched claim is thief-safe (single CAS)
	for i := 1; i < n; i++ {
		w.dq.PushBottom(buf[i]) // ok: the remnant lands in the thief's own deque
	}
	return n
}

func (w *Worker) badVictim(v *Worker) int {
	return v.dq.PopBottom() // want `owner-only deque method PopBottom called on v, which is not the owning receiver w`
}

func (w *Worker) badBatchLanding(v *Worker, task int) {
	v.dq.PushBottom(task) // want `owner-only deque method PushBottom called on v, which is not the owning receiver w`
}

func (w *Worker) badClosure() func() {
	return func() {
		w.dq.Expose() // want `owner-only deque method Expose called inside a function literal`
	}
}

func (w *Worker) badAlias() {
	d := w.dq // want `dq field must not be aliased`
	_ = d
}

func (w *Worker) badMethodValue() func() int {
	return w.dq.PopPublicBottom // want `must be called directly, not bound as a method value`
}

func (w *Worker) unclassified() {
	w.dq.Mystery() // want `not classified as owner-only or thief-safe`
}

func (w *Worker) newTask() *Task { // ok: owner-local freelist pop on the receiver
	t := w.freelist
	if t == nil {
		return &Task{}
	}
	w.freelist = t.next
	t.next = nil
	return t
}

func (w *Worker) layoutQuery() uintptr {
	return unsafe.Offsetof(w.dq) + unsafe.Offsetof(w.freelist) // ok: Offsetof does not evaluate its operand
}

func (w *Worker) badFreelistVictim(v *Worker) *Task {
	return v.freelist // want `owner-only field freelist accessed on v, which is not the owning receiver w`
}

func (w *Worker) badFreelistClosure() func() {
	return func() {
		w.freelist = nil // want `owner-only field freelist accessed inside a function literal`
	}
}

func (w *Worker) badFreelistAddr() **Task {
	return &w.freelist // want `freelist field must not have its address taken`
}

func badFreelistFree(w *Worker, t *Task) {
	t.next = w.freelist // want `owner-only field freelist accessed outside a Worker method`
	w.freelist = t      // want `owner-only field freelist accessed outside a Worker method`
}

type Scheduler struct{ workers []*Worker }

func (s *Scheduler) badFromScheduler() {
	s.workers[0].dq.UnexposeAll() // want `owner-only deque method UnexposeAll called outside a Worker method`
}

func badFreeFunction(w *Worker) {
	w.dq.PushBottom(2) // want `owner-only deque method PushBottom called outside a Worker method`
}
