package owneronly_test

import (
	"testing"

	"lcws/internal/analysis/analysistest"
	"lcws/internal/analysis/owneronly"
)

func TestOwnerOnly(t *testing.T) {
	analysistest.Run(t, "testdata", owneronly.Analyzer, "lcws/internal/core")
}
