// Package owneronly verifies the central usage contract of the LCWS
// worker's owner-only state.
//
// The split deque's owner-side operations (PushBottom, TryPushBottom,
// SpillOldest, PopBottom, PopPublicBottom, Expose, UnexposeAll) are
// synchronization-free (growth and spilling publish their results with
// single release stores but are still single-writer protocols) and
// therefore only safe when invoked by the deque's single owner. In this
// codebase the owner is the Worker whose dq field holds the deque, so
// every owner-only call must have the shape w.dq.Method(...) where w is
// the receiver of an enclosing Worker method, outside any function
// literal (a closure could outlive or escape the owner's loop).
// Thief-safe operations (PopTop, HasTwoTasks, IsEmpty, PrivateSize,
// PublicSize) may be called on any worker's deque, which is exactly how
// stealOnce and notify use a victim's dq. The batched steal entry
// points ride the same split: PopTopHalf/PopTopN claim with a CAS and
// are thief-safe, and HasPublicWork is the racy read the parking lot's
// pre-park and wake checks run against arbitrary victims.
//
// The per-worker task freelist (the freelist and freelistLen fields)
// carries the same contract one level down: it is mutated without
// synchronization on every fork and recycle, so any read or write of
// w.freelist must likewise happen on the enclosing Worker method's own
// receiver and outside function literals, and its address must never
// be taken. The worker's job context (the curJob and curShard fields,
// cached by setJob and read on every push and task boundary), its
// overflow list (overflowHead, overflowTail, spilled — filled by
// spillForPush, drained only by the owner), and the spill scratch
// buffer (spillBuf) are plain owner-only data of exactly the same
// class and are held to the same rule.
//
// The flight recorder (the rec field, internal/trace.Recorder) splits
// the same way as the deque: its recording methods write the owner-side
// ring with plain stores and must be invoked as w.rec.Method(...) with
// w the enclosing Worker method's receiver, outside function literals;
// the snapshot-protocol readers (Snapshot, Hist, ResetHists) and the
// pure accessors (Cap, Now) are safe from any goroutine, which is how
// Scheduler.TraceSnapshot and Scheduler.Stats read live rings. Because
// tracing is optional, comparing the field against nil is allowed
// anywhere — that is the disabled-tracing fast path — as is the
// initialization write in Worker.init.
//
// The elastic pool adds a third method class on both fields:
// epoch-guarded operations (deque Teardown; recorder ReleaseRing,
// EnsureRing) mutate owner-side structures from the resizer's
// goroutine, which is sound only under the worker-set quiescence
// discipline — the owning goroutine has exited and no epoch pin can
// still reach the structure. Such a call must sit in a function whose
// doc comment carries the //lcws:epoch-guarded directive (the written
// quiescence proof, shared with the fieldclass analyzer's
// epoch-guarded field class), outside function literals.
//
// unsafe.Offsetof(w.dq) and friends are exempt everywhere: Offsetof
// queries the struct layout without evaluating its operand, which is how
// the layout regression tests pin the cache-line contract.
//
// Test files are exempt, as in syncaccount and fieldclass: tests drive
// workers through hand-built states on the test goroutine (often on an
// unstarted scheduler where no owner goroutine exists yet), and the
// race detector covers them dynamically.
package owneronly

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lcws/internal/analysis"
	"lcws/internal/analysis/fieldclass"
)

// workerPkg/workerType identify the guarded struct; dequeField and
// recField its method-bearing owner-only fields:
// lcws/internal/core.Worker.
const (
	workerPkg  = "lcws/internal/core"
	workerType = "Worker"
	dequeField = "dq"
	recField   = "rec"
)

// plainOwnerFields are Worker fields that are plain unsynchronized
// data touched on the hot path: the task freelist (popped/pushed on
// every fork and recycle) and the cached job context (swapped at task
// boundaries, read on every push). Every read or write must be on the
// enclosing Worker method's own receiver, outside function literals,
// and the address must never be taken.
var plainOwnerFields = map[string]bool{
	"freelist":     true,
	"freelistLen":  true,
	"curJob":       true,
	"curShard":     true,
	"overflowHead": true,
	"overflowTail": true,
	"spilled":      true,
	"spillBuf":     true,
}

// ownerOnly holds the deque methods that must run on the owner's
// goroutine; thiefSafe holds the ones any thread may call. Every method
// reachable through the dq field must be classified in one of the two —
// an unclassified method is itself reported, so extending the taskDeque
// interface forces a conscious concurrency decision here.
var ownerOnly = map[string]bool{
	"PushBottom":      true,
	"TryPushBottom":   true, // growth-aware push: owner-side array doubling
	"SpillOldest":     true, // overflow spill: owner-side window truncation
	"PopBottom":       true,
	"PopPublicBottom": true,
	"Expose":          true,
	"UnexposeAll":     true,
	"PushStamp":       true, // MultFree recycling stamp: epoch + owner-local bottom index
	"NeverExposed":    true, // MultFree recycling gate: owner-local exposure high-water mark
}

// epochGuarded holds the deque methods the elastic pool's resizer may
// call from outside the owner goroutine, but only under the worker-set
// quiescence discipline: the call must sit in a function whose doc
// comment carries the //lcws:epoch-guarded directive (see the package
// comment and core.workerSet).
var epochGuarded = map[string]bool{
	"Teardown": true, // index-preserving array release of a retired slot's deque
}

var thiefSafe = map[string]bool{
	"PopTop":             true,
	"PopTopHalf":         true, // batched steal: single CAS claims the run
	"PopTopN":            true, // Chase-Lev batched steal
	"TakeTopRelaxed":     true, // MultFree relaxed claim: per-thief RelClaim cursor, no CAS
	"TakeTopHalfRelaxed": true, // MultFree batched relaxed claim
	"HasTwoTasks":        true,
	"HasPublicWork":      true, // parking-lot pre-park / wake re-check
	"IsEmpty":            true,
	"PrivateSize":        true,
	"PublicSize":         true,
	"Capacity":           true, // atomic load of the published array generation
	"MaxCapacity":        true, // immutable growth ceiling
}

// recOwnerOnly holds the flight recorder's owner-path methods: they
// write the ring with plain stores, so only the owning worker may call
// them. recThiefSafe holds the freeze-protocol readers and pure
// accessors any goroutine may use. As with the deque, an unclassified
// method is reported so extending the Recorder forces a decision here.
var recOwnerOnly = map[string]bool{
	"TaskBegin":     true,
	"TaskEnd":       true,
	"Fork":          true,
	"StealAttempt":  true,
	"StealHit":      true,
	"LocalWork":     true,
	"ExposeRequest": true, // the thief records into its OWN ring
	"SignalSend":    true,
	"SignalHandle":  true,
	"Exposed":       true,
	"ParkStart":     true,
	"ParkEnd":       true,
	"DequeEmpty":    true,
	"Repair":        true,
	"Grow":          true, // deque growth marker, owner ring
	"Spill":         true, // overflow-spill marker, owner ring
	"JobSwitch":     true, // job-context marker written at setJob, owner ring
	"Duplicate":     true, // MultFree lost-arbitration marker: the loser records into its OWN ring
	"Resize":        true, // worker-set adoption marker, recorded by each worker on its own ring
	"Retire":        true, // retirement marker: the retiring worker's last own-ring event
	"Tail":          true, // owner-side plain reads (panic reports)
	"ResetRun":      true,
}

// recEpochGuarded holds the recorder's epoch-guarded methods: the ring
// release/restore pair of the elastic pool's retire/regrow path. Same
// directive rule as the deque's epochGuarded set.
var recEpochGuarded = map[string]bool{
	"ReleaseRing": true,
	"EnsureRing":  true,
}

var recThiefSafe = map[string]bool{
	"Snapshot":   true, // freeze protocol: safe against a live owner
	"Hist":       true, // atomic-word histogram reads
	"ResetHists": true,
	"Cap":        true,
	"Now":        true,
}

var Analyzer = &analysis.Analyzer{
	Name: "owneronly",
	Doc: "check that owner-only worker state is touched only by the owning worker\n\n" +
		"Owner-side deque operations elide all fences and CAS (Lemmas 1-3 of the paper); " +
		"calling one from another goroutine is a data race. This analyzer enforces that " +
		"w.dq.PushBottom/PopBottom/PopPublicBottom/Expose/UnexposeAll appear only with w " +
		"the receiver of the enclosing Worker method, not inside function literals, and " +
		"that the dq field is never aliased into a variable or argument. The task " +
		"freelist, the cached job context (curJob, curShard), and the overflow-spill " +
		"state (overflowHead, overflowTail, spilled, spillBuf) carry the same " +
		"owner-only contract for plain reads and writes, " +
		"and the flight-recorder field (rec) splits its methods the same way: recording " +
		"methods are owner-only, the freeze-protocol readers (Snapshot/Hist/ResetHists) " +
		"are thief-safe, and nil comparisons — the disabled-tracing fast path — are " +
		"allowed anywhere.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	var files []*ast.File
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	analysis.InspectWithStack(files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch name := sel.Sel.Name; {
		case name == dequeField:
			if isWorkerField(fieldObject(pass, sel), dequeField) {
				checkDequeUse(pass, sel, stack)
			}
		case plainOwnerFields[name]:
			if isWorkerField(fieldObject(pass, sel), name) {
				checkPlainFieldUse(pass, sel, stack, name)
			}
		case name == recField:
			if isWorkerField(fieldObject(pass, sel), recField) {
				checkRecUse(pass, sel, stack)
			}
		}
		return true
	})
	return nil
}

// fieldObject resolves a selector to the field it selects, or nil when
// it is not a field selection.
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		v, _ := s.Obj().(*types.Var)
		return v
	}
	return nil
}

// isWorkerField reports whether v is core.Worker's field of the given
// name.
func isWorkerField(v *types.Var, name string) bool {
	return v != nil && v.Name() == name &&
		v.Pkg() != nil && v.Pkg().Path() == workerPkg
}

// workerRecv returns the receiver object of the innermost enclosing
// Worker method declaration, or nil when the stack is not inside one.
func workerRecv(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	recvObj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil {
		return nil
	}
	if n := analysis.NamedOf(recvObj.Type()); n == nil || n.Obj().Name() != workerType {
		return nil
	}
	return recvObj
}

// inFuncLit reports whether the stack crosses a function literal between
// fd and the node under inspection; such closures may escape the owner's
// goroutine.
func inFuncLit(stack []ast.Node, fd *ast.FuncDecl) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == fd {
			return false
		}
		if _, ok := stack[i].(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// checkDequeUse validates one appearance of the dq field. stack holds
// the ancestors of sel, outermost first.
func checkDequeUse(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	if analysis.IsOffsetofArg(pass.TypesInfo, stack) {
		return
	}
	parent := stack[len(stack)-1]

	// Initialization writes (w.dq = ...) are the only non-call use
	// allowed; they happen before the worker goroutine starts.
	if assign, ok := parent.(*ast.AssignStmt); ok {
		for _, lhs := range assign.Lhs {
			if lhs == sel {
				return
			}
		}
	}

	method, ok := parent.(*ast.SelectorExpr)
	if !ok || method.X != sel {
		pass.Reportf(sel.Pos(), "the dq field must not be aliased, passed, or compared: owner-only access is checked per call site")
		return
	}
	name := method.Sel.Name
	switch {
	case thiefSafe[name]:
		return
	case epochGuarded[name]:
		checkEpochGuardedCall(pass, method, stack, "deque")
		return
	case !ownerOnly[name]:
		pass.Reportf(method.Sel.Pos(), "deque method %s is not classified as owner-only, thief-safe, or epoch-guarded in the owneronly analyzer", name)
		return
	}

	// Owner-only method: must be called immediately (not bound as a
	// method value) ...
	if len(stack) < 2 {
		pass.Reportf(method.Sel.Pos(), "owner-only deque method %s must be called directly, not bound as a method value", name)
		return
	}
	if call, ok := stack[len(stack)-2].(*ast.CallExpr); !ok || call.Fun != method {
		pass.Reportf(method.Sel.Pos(), "owner-only deque method %s must be called directly, not bound as a method value", name)
		return
	}

	// ... on the receiver of the enclosing Worker method ...
	fd := analysis.EnclosingFuncDecl(stack)
	recvObj := workerRecv(pass, fd)
	if recvObj == nil {
		pass.Reportf(method.Sel.Pos(), "owner-only deque method %s called outside a Worker method", name)
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recvObj {
		pass.Reportf(method.Sel.Pos(), "owner-only deque method %s called on %s, which is not the owning receiver %s", name, exprString(sel.X), recvObj.Name())
		return
	}

	// ... and not from inside a function literal, which could run on
	// another goroutine or after the owner loop moved on.
	if inFuncLit(stack, fd) {
		pass.Reportf(method.Sel.Pos(), "owner-only deque method %s called inside a function literal; closures may escape the owner's goroutine", name)
	}
}

// checkPlainFieldUse validates one appearance of a plain owner-only
// data field (freelist, curJob, curShard). These are popped, pushed
// and swapped on the hot path without any synchronization, so the
// rules are stricter than the deque's: every read or write — not just
// method calls — must be on the enclosing Worker method's own
// receiver, outside function literals, and the field's address must
// never be taken (an alias would let another goroutine reach the
// owner's state).
func checkPlainFieldUse(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node, field string) {
	if len(stack) == 0 {
		return
	}
	if analysis.IsOffsetofArg(pass.TypesInfo, stack) {
		return
	}
	if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == sel {
		pass.Reportf(sel.Pos(), "the %s field must not have its address taken: owner-only access is checked per use site", field)
		return
	}

	fd := analysis.EnclosingFuncDecl(stack)
	recvObj := workerRecv(pass, fd)
	if recvObj == nil {
		pass.Reportf(sel.Pos(), "owner-only field %s accessed outside a Worker method", field)
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recvObj {
		pass.Reportf(sel.Pos(), "owner-only field %s accessed on %s, which is not the owning receiver %s", field, exprString(sel.X), recvObj.Name())
		return
	}
	if inFuncLit(stack, fd) {
		pass.Reportf(sel.Pos(), "owner-only field %s accessed inside a function literal; closures may escape the owner's goroutine", field)
	}
}

// isNilComparison reports whether sel is an operand of a ==/!=
// comparison against the untyped nil literal.
func isNilComparison(pass *analysis.Pass, stack []ast.Node, sel *ast.SelectorExpr) bool {
	if len(stack) == 0 {
		return false
	}
	bin, ok := stack[len(stack)-1].(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return false
	}
	other := bin.X
	if other == sel {
		other = bin.Y
	} else if bin.Y != sel {
		return false
	}
	tv, ok := pass.TypesInfo.Types[other]
	return ok && tv.IsNil()
}

// checkRecUse validates one appearance of the rec field. The rules are
// the deque's — direct calls only, owner receiver for the owner-path
// methods, no closures, no aliasing, initialization assignment allowed —
// plus one extra allowance: nil comparisons, because `w.rec != nil` is
// the disabled-tracing fast path guarding every hook, and thieves read
// a victim's nil-ness nowhere (hooks always test the caller's own rec).
func checkRecUse(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	if analysis.IsOffsetofArg(pass.TypesInfo, stack) {
		return
	}
	if isNilComparison(pass, stack, sel) {
		return
	}
	parent := stack[len(stack)-1]

	// Initialization write (w.rec = ...) in Worker.init, before the
	// worker goroutine exists.
	if assign, ok := parent.(*ast.AssignStmt); ok {
		for _, lhs := range assign.Lhs {
			if lhs == sel {
				return
			}
		}
	}

	method, ok := parent.(*ast.SelectorExpr)
	if !ok || method.X != sel {
		pass.Reportf(sel.Pos(), "the rec field must not be aliased, passed, or compared (except against nil): owner-only access is checked per call site")
		return
	}
	name := method.Sel.Name
	switch {
	case recThiefSafe[name]:
		return
	case recEpochGuarded[name]:
		checkEpochGuardedCall(pass, method, stack, "recorder")
		return
	case !recOwnerOnly[name]:
		pass.Reportf(method.Sel.Pos(), "recorder method %s is not classified as owner-only, thief-safe, or epoch-guarded in the owneronly analyzer", name)
		return
	}

	if len(stack) < 2 {
		pass.Reportf(method.Sel.Pos(), "owner-only recorder method %s must be called directly, not bound as a method value", name)
		return
	}
	if call, ok := stack[len(stack)-2].(*ast.CallExpr); !ok || call.Fun != method {
		pass.Reportf(method.Sel.Pos(), "owner-only recorder method %s must be called directly, not bound as a method value", name)
		return
	}

	fd := analysis.EnclosingFuncDecl(stack)
	recvObj := workerRecv(pass, fd)
	if recvObj == nil {
		pass.Reportf(method.Sel.Pos(), "owner-only recorder method %s called outside a Worker method", name)
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recvObj {
		pass.Reportf(method.Sel.Pos(), "owner-only recorder method %s called on %s, which is not the owning receiver %s", name, exprString(sel.X), recvObj.Name())
		return
	}
	if inFuncLit(stack, fd) {
		pass.Reportf(method.Sel.Pos(), "owner-only recorder method %s called inside a function literal; closures may escape the owner's goroutine", name)
	}
}

// checkEpochGuardedCall validates a call to an epoch-guarded method
// (deque Teardown, recorder ReleaseRing/EnsureRing): it must be a
// direct call from a function whose doc comment carries the
// //lcws:epoch-guarded directive — the documented quiescence proof —
// and not from inside a function literal, which could escape the
// quiescent window.
func checkEpochGuardedCall(pass *analysis.Pass, method *ast.SelectorExpr, stack []ast.Node, kind string) {
	name := method.Sel.Name
	if len(stack) < 2 {
		pass.Reportf(method.Sel.Pos(), "epoch-guarded %s method %s must be called directly, not bound as a method value", kind, name)
		return
	}
	if call, ok := stack[len(stack)-2].(*ast.CallExpr); !ok || call.Fun != method {
		pass.Reportf(method.Sel.Pos(), "epoch-guarded %s method %s must be called directly, not bound as a method value", kind, name)
		return
	}
	fd := analysis.EnclosingFuncDecl(stack)
	if fd == nil || !docHasMarker(fd.Doc, fieldclass.EpochGuardedMarker) {
		pass.Reportf(method.Sel.Pos(), "epoch-guarded %s method %s called outside a function carrying the %s quiescence directive", kind, name, fieldclass.EpochGuardedMarker)
		return
	}
	if inFuncLit(stack, fd) {
		pass.Reportf(method.Sel.Pos(), "epoch-guarded %s method %s called inside a function literal; closures may escape the quiescent window", kind, name)
	}
}

// docHasMarker reports whether any comment line in cg starts with
// marker.
func docHasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, marker) {
			return true
		}
	}
	return false
}

// exprString renders small expressions for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "expression"
	}
}
