// Package owneronly verifies the central usage contract of the LCWS
// split deque: the owner-side operations (PushBottom, PopBottom,
// PopPublicBottom, Expose, UnexposeAll) are synchronization-free and
// therefore only safe when invoked by the deque's single owner. In this
// codebase the owner is the Worker whose dq field holds the deque, so
// every owner-only call must have the shape w.dq.Method(...) where w is
// the receiver of an enclosing Worker method, outside any function
// literal (a closure could outlive or escape the owner's loop).
// Thief-safe operations (PopTop, HasTwoTasks, IsEmpty, PrivateSize,
// PublicSize) may be called on any worker's deque, which is exactly how
// stealOnce and notify use a victim's dq.
package owneronly

import (
	"go/ast"
	"go/types"

	"lcws/internal/analysis"
)

// workerPkg/workerType/dequeField identify the guarded field: the dq
// field of lcws/internal/core.Worker.
const (
	workerPkg  = "lcws/internal/core"
	workerType = "Worker"
	dequeField = "dq"
)

// ownerOnly holds the deque methods that must run on the owner's
// goroutine; thiefSafe holds the ones any thread may call. Every method
// reachable through the dq field must be classified in one of the two —
// an unclassified method is itself reported, so extending the taskDeque
// interface forces a conscious concurrency decision here.
var ownerOnly = map[string]bool{
	"PushBottom":      true,
	"PopBottom":       true,
	"PopPublicBottom": true,
	"Expose":          true,
	"UnexposeAll":     true,
}

var thiefSafe = map[string]bool{
	"PopTop":      true,
	"HasTwoTasks": true,
	"IsEmpty":     true,
	"PrivateSize": true,
	"PublicSize":  true,
}

var Analyzer = &analysis.Analyzer{
	Name: "owneronly",
	Doc: "check that owner-only split-deque methods are called only from the owning worker\n\n" +
		"Owner-side deque operations elide all fences and CAS (Lemmas 1-3 of the paper); " +
		"calling one from another goroutine is a data race. This analyzer enforces that " +
		"w.dq.PushBottom/PopBottom/PopPublicBottom/Expose/UnexposeAll appear only with w " +
		"the receiver of the enclosing Worker method, not inside function literals, and " +
		"that the dq field is never aliased into a variable or argument.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	analysis.InspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != dequeField {
			return true
		}
		field := fieldObject(pass, sel)
		if field == nil || !isWorkerDequeField(field) {
			return true
		}
		checkUse(pass, sel, stack)
		return true
	})
	return nil
}

// fieldObject resolves a selector to the field it selects, or nil when
// it is not a field selection.
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		v, _ := s.Obj().(*types.Var)
		return v
	}
	return nil
}

// isWorkerDequeField reports whether v is core.Worker's dq field.
func isWorkerDequeField(v *types.Var) bool {
	return v.Name() == dequeField &&
		v.Pkg() != nil && v.Pkg().Path() == workerPkg
}

// checkUse validates one appearance of the dq field. stack holds the
// ancestors of sel, outermost first.
func checkUse(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]

	// Initialization writes (w.dq = ...) are the only non-call use
	// allowed; they happen before the worker goroutine starts.
	if assign, ok := parent.(*ast.AssignStmt); ok {
		for _, lhs := range assign.Lhs {
			if lhs == sel {
				return
			}
		}
	}

	method, ok := parent.(*ast.SelectorExpr)
	if !ok || method.X != sel {
		pass.Reportf(sel.Pos(), "the dq field must not be aliased, passed, or compared: owner-only access is checked per call site")
		return
	}
	name := method.Sel.Name
	switch {
	case thiefSafe[name]:
		return
	case !ownerOnly[name]:
		pass.Reportf(method.Sel.Pos(), "deque method %s is not classified as owner-only or thief-safe in the owneronly analyzer", name)
		return
	}

	// Owner-only method: must be called immediately (not bound as a
	// method value) ...
	if len(stack) < 2 {
		pass.Reportf(method.Sel.Pos(), "owner-only deque method %s must be called directly, not bound as a method value", name)
		return
	}
	if call, ok := stack[len(stack)-2].(*ast.CallExpr); !ok || call.Fun != method {
		pass.Reportf(method.Sel.Pos(), "owner-only deque method %s must be called directly, not bound as a method value", name)
		return
	}

	// ... on the receiver of the enclosing Worker method ...
	fd := analysis.EnclosingFuncDecl(stack)
	if fd == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		pass.Reportf(method.Sel.Pos(), "owner-only deque method %s called outside a Worker method", name)
		return
	}
	recvIdent := fd.Recv.List[0].Names[0]
	recvObj := pass.TypesInfo.Defs[recvIdent]
	if recvObj == nil || analysis.NamedOf(recvObj.Type()) == nil ||
		analysis.NamedOf(recvObj.Type()).Obj().Name() != workerType {
		pass.Reportf(method.Sel.Pos(), "owner-only deque method %s called outside a Worker method", name)
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recvObj {
		pass.Reportf(method.Sel.Pos(), "owner-only deque method %s called on %s, which is not the owning receiver %s", name, exprString(sel.X), recvIdent.Name)
		return
	}

	// ... and not from inside a function literal, which could run on
	// another goroutine or after the owner loop moved on.
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == fd {
			break
		}
		if _, ok := stack[i].(*ast.FuncLit); ok {
			pass.Reportf(method.Sel.Pos(), "owner-only deque method %s called inside a function literal; closures may escape the owner's goroutine", name)
			return
		}
	}
}

// exprString renders small expressions for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "expression"
	}
}
