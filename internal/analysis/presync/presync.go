// Package presync verifies //lcws:presync annotations.
//
// The annotation is the escape hatch the other analyzers honor: it
// marks a plain access whose safety rests on a happens-before edge the
// per-site syntax cannot see. PR 1 introduced it as a trusted comment;
// this analyzer makes it a checked claim. An annotation is justified
// when one of the following holds:
//
//   - it sits in a _test.go file (tests run the scheduler
//     single-goroutine or behind their own synchronization, and the
//     race detector covers them dynamically);
//   - the enclosing function is construction context — a function
//     named New*/new* or a method named init — which runs before the
//     structure is shared;
//   - the annotated statement is at package level (package
//     initialization happens-before main);
//   - a release edge follows the annotated statement in the enclosing
//     function: an atomic Store/Swap/CompareAndSwap/Add, a mutex
//     Lock/Unlock, Once.Do, a WaitGroup operation, a go statement, a
//     channel send or close — directly, or transitively through a call
//     to a same-package function whose body contains such an edge.
//     This is the publication pattern of the paper: plain-write the
//     payload, then release; the edge orders the write for whoever
//     acquires.
//
// Function-literal bodies are not scanned for edges: a closure's
// execution time is unknown (it may run on another goroutine or after
// the owner moved on), so an edge inside one proves nothing about the
// annotated write. The enclosing call can still be the edge itself
// (Once.Do, go).
//
// Anything else is reported as stale: either the code lost its edge in
// a refactor, or the annotation was wrong to begin with. A comment
// with no statement on its own or the following line is reported as
// dangling.
package presync

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lcws/internal/analysis"
)

// Annotation is the marker this analyzer verifies.
const Annotation = "//lcws:presync"

var Analyzer = &analysis.Analyzer{
	Name: "presync",
	Doc: "verify that every " + Annotation + " annotation is justified\n\n" +
		"An annotated plain write must be followed, within its enclosing function, by a " +
		"release edge (atomic store/CAS, mutex op, Once.Do, WaitGroup op, go statement, " +
		"channel send/close — directly or through a same-package call), or sit in a " +
		"constructor or test context. Stale annotations mean the happens-before argument " +
		"rotted out from under the comment.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		decls:    map[types.Object]*ast.FuncDecl{},
		memo:     map[*ast.FuncDecl]bool{},
		visiting: map[*ast.FuncDecl]bool{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					c.decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if strings.HasPrefix(cm.Text, Annotation) {
					c.checkAnnotation(f, cm)
				}
			}
		}
	}
	return nil
}

type checker struct {
	pass     *analysis.Pass
	decls    map[types.Object]*ast.FuncDecl // same-package function declarations
	memo     map[*ast.FuncDecl]bool         // body contains a release edge
	visiting map[*ast.FuncDecl]bool
}

// checkAnnotation validates one //lcws:presync comment in f.
func (c *checker) checkAnnotation(f *ast.File, cm *ast.Comment) {
	line := c.pass.Fset.Position(cm.Pos()).Line
	stmt, fd := c.findTarget(f, line)
	if stmt == nil {
		if c.atPackageLevel(f, line) {
			return // package initialization happens-before main
		}
		c.pass.Reportf(cm.Pos(), "dangling %s: no statement begins on this or the next line", Annotation)
		return
	}
	if fd == nil {
		return // package-level initializer
	}
	if isConstructor(fd) {
		return
	}
	if c.releaseAfter(fd, stmt.Pos()) {
		return
	}
	c.pass.Reportf(stmt.Pos(), "stale %s: no release edge (atomic store/CAS, mutex op, Once.Do, WaitGroup op, go, channel send/close) follows the annotated statement in %s", Annotation, fd.Name.Name)
}

// findTarget locates the annotated statement: the innermost statement
// starting on the comment's line (trailing form), else on the next
// line (annotation-above form), plus its enclosing function.
func (c *checker) findTarget(f *ast.File, line int) (ast.Stmt, *ast.FuncDecl) {
	var onLine, onNext ast.Stmt
	var fdOnLine, fdOnNext *ast.FuncDecl
	analysis.InspectWithStack([]*ast.File{f}, func(n ast.Node, stack []ast.Node) bool {
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		switch c.pass.Fset.Position(n.Pos()).Line {
		case line:
			if onLine == nil || stmt.Pos() > onLine.Pos() {
				onLine, fdOnLine = stmt, analysis.EnclosingFuncDecl(stack)
			}
		case line + 1:
			if onNext == nil || stmt.Pos() > onNext.Pos() {
				onNext, fdOnNext = stmt, analysis.EnclosingFuncDecl(stack)
			}
		}
		return true
	})
	if onLine != nil {
		return onLine, fdOnLine
	}
	return onNext, fdOnNext
}

// atPackageLevel reports whether a package-level declaration (var,
// const, type) begins on the comment's line or the next: package
// initialization happens-before anything concurrent.
func (c *checker) atPackageLevel(f *ast.File, line int) bool {
	for _, decl := range f.Decls {
		if _, ok := decl.(*ast.GenDecl); !ok {
			continue
		}
		dl := c.pass.Fset.Position(decl.Pos()).Line
		end := c.pass.Fset.Position(decl.End()).Line
		if line >= dl-1 && line <= end {
			return true
		}
	}
	return false
}

// isConstructor reports whether fd is construction context: a function
// named New*/new*, or a method named init (the pool builds workers in
// place via Worker.init before their goroutines start).
func isConstructor(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
}

// releaseAfter reports whether fd's body contains a release edge at or
// after pos, outside function literals.
func (c *checker) releaseAfter(fd *ast.FuncDecl, pos token.Pos) bool {
	if fd.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if n.Pos() >= pos {
				found = true
			}
		case *ast.GoStmt:
			if n.Pos() >= pos {
				found = true
			}
		case *ast.CallExpr:
			if n.Pos() >= pos && c.isReleaseCall(n) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasEdge reports whether fd's body contains a release edge anywhere
// (used for transitive calls), memoized. Recursion through call cycles
// conservatively yields false for the in-progress frame.
func (c *checker) hasEdge(fd *ast.FuncDecl) bool {
	if v, ok := c.memo[fd]; ok {
		return v
	}
	if c.visiting[fd] || fd.Body == nil {
		return false
	}
	c.visiting[fd] = true
	defer delete(c.visiting, fd)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			found = true
		case *ast.GoStmt:
			found = true
		case *ast.CallExpr:
			if c.isReleaseCall(n) {
				found = true
				return false
			}
		}
		return true
	})
	c.memo[fd] = found
	return found
}

// atomicReleaseMethods are the sync/atomic methods that publish.
var atomicReleaseMethods = map[string]bool{
	"Store": true, "Swap": true, "CompareAndSwap": true,
	"Add": true, "Or": true, "And": true,
}

// syncReleaseMethods maps sync types to their edge-forming methods.
var syncReleaseMethods = map[string]map[string]bool{
	"Mutex":     {"Lock": true, "Unlock": true, "TryLock": true},
	"RWMutex":   {"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true, "TryLock": true, "TryRLock": true},
	"Once":      {"Do": true},
	"WaitGroup": {"Add": true, "Done": true, "Wait": true},
}

// isReleaseCall reports whether call forms a release edge: a builtin
// close, a sync/atomic or sync-package synchronization method, or a
// call to a same-package function whose body (transitively) contains
// an edge.
func (c *checker) isReleaseCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "close" {
			if _, ok := c.pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
				return true
			}
		}
		return c.calleeHasEdge(fun)
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if s, ok := c.pass.TypesInfo.Selections[fun]; ok && s.Kind() == types.MethodVal {
			recv := analysis.Deref(s.Recv())
			if analysis.IsAtomicType(recv) && atomicReleaseMethods[name] {
				return true
			}
			if n := analysis.NamedOf(recv); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" {
				if methods, ok := syncReleaseMethods[n.Obj().Name()]; ok && methods[name] {
					return true
				}
			}
			return c.calleeHasEdge(fun.Sel)
		}
		// Package-qualified call: sync/atomic free functions
		// (atomic.StoreUint64 and friends) publish; same-package
		// qualified calls cannot occur.
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "sync/atomic" {
				for _, prefix := range []string{"Store", "Swap", "CompareAndSwap", "Add", "Or", "And"} {
					if strings.HasPrefix(name, prefix) {
						return true
					}
				}
			}
		}
	}
	return false
}

// calleeHasEdge resolves id to a same-package function declaration and
// reports whether its body transitively contains a release edge.
func (c *checker) calleeHasEdge(id *ast.Ident) bool {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	fd, ok := c.decls[obj]
	return ok && c.hasEdge(fd)
}
