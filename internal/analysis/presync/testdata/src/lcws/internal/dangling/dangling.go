// Package dangling holds a //lcws:presync comment attached to no
// statement; it is loaded directly (not via analysistest) because the
// dangling comment occupies the whole line a want pattern would need.
package dangling

func f() int {
	x := 1
	return x
	//lcws:presync attached to nothing
}
