// Package core is a stand-in exercising the presync analyzer on the
// Job publication shapes of the executor: a plain write to shared
// state annotated //lcws:presync must be followed by a release edge,
// or sit in construction context.
package core

import (
	"sync"
	"sync/atomic"
)

// Task is the published frame; job is plain state set before release.
type Task struct {
	job *Job
}

// Job is the per-job control block.
type Job struct {
	root       Task
	shards     []uint64
	settleOnce sync.Once
	done       chan struct{}
}

// Scheduler models the submit path.
type Scheduler struct {
	wake    atomic.Uint64
	pending atomic.Int64
	mu      sync.Mutex
	jobs    []*Job
}

// NewJob is construction context: annotations inside it need no edge.
func NewJob() *Job {
	j := &Job{done: make(chan struct{})}
	j.root.job = j //lcws:presync constructor, not yet shared
	return j
}

// submit publishes the job with a direct atomic edge.
func (s *Scheduler) submit(j *Job) {
	j.root.job = j //lcws:presync ordered by the pending.Add below
	j.shards = make([]uint64, 4)
	//lcws:presync the annotation-above form is also honored
	j.root.job = j
	s.pending.Add(1)
}

// submitIndirect publishes through a same-package call that contains
// the edge (wakeAll's atomic swap), the transitive case.
func (s *Scheduler) submitIndirect(j *Job) {
	j.root.job = j //lcws:presync ordered by wakeAll's park-word swap
	s.wakeAll()
}

func (s *Scheduler) wakeAll() {
	s.wake.Store(0)
}

// submitLocked publishes under a mutex.
func (s *Scheduler) submitLocked(j *Job) {
	j.root.job = j //lcws:presync ordered by the unlock below
	s.mu.Lock()
	s.jobs = append(s.jobs, j)
	s.mu.Unlock()
}

// settle closes the done channel after the annotated write.
func (j *Job) settle() {
	//lcws:presync ordered by the close below
	j.shards = nil
	close(j.done)
}

// spawn hands the job to a goroutine; the go statement is the edge.
func (s *Scheduler) spawn(j *Job) {
	j.root.job = j //lcws:presync ordered by the go statement
	go j.settle()
}

// leak has no release edge after the annotated write: the claimed
// happens-before justification is stale.
func (s *Scheduler) leak(j *Job) {
	s.pending.Add(1) // an edge BEFORE the write does not publish it
	//lcws:presync nothing below releases this
	j.root.job = j // want `stale //lcws:presync: no release edge .* follows the annotated statement in leak`
}

// closureEdge's only edge is inside a function literal that merely
// gets assigned; a closure's execution time is unknown, so it proves
// nothing.
func (s *Scheduler) closureEdge(j *Job) {
	//lcws:presync edge hidden in a closure does not count
	j.root.job = j // want `stale //lcws:presync: no release edge .* follows the annotated statement in closureEdge`
	f := func() { s.pending.Add(1) }
	_ = f
}

// helper without any edge keeps the transitive search honest.
func (s *Scheduler) noEdgeHelper(j *Job) {
	j.shards = nil
}

// submitThroughDeadEnd calls only edge-free helpers.
func (s *Scheduler) submitThroughDeadEnd(j *Job) {
	//lcws:presync helper contains no release edge
	j.root.job = j // want `stale //lcws:presync: no release edge .* follows the annotated statement in submitThroughDeadEnd`
	s.noEdgeHelper(j)
}
