package presync_test

import (
	"strings"
	"testing"

	"lcws/internal/analysis"
	"lcws/internal/analysis/analysistest"
	"lcws/internal/analysis/presync"
)

func TestPresync(t *testing.T) {
	analysistest.Run(t, "testdata", presync.Analyzer, "lcws/internal/core")
}

// TestDangling loads the dangling-comment package directly: the
// dangling diagnostic lands on the comment's own line, which cannot
// also hold a // want pattern.
func TestDangling(t *testing.T) {
	loader, err := analysis.NewOverlayLoader("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("lcws/internal/dangling")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{presync.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "dangling //lcws:presync") {
		t.Fatalf("got %q, want a dangling-annotation diagnostic", diags[0].Message)
	}
}
