package fieldclass

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"lcws/internal/analysis"
)

// The census is lcwsvet's machine-readable view of the concurrency
// manifests: every manifested field with its declared class and its
// static access-site counts. CI regenerates ANALYSIS.json and diffs it,
// so a PR that adds shared state, changes a field's discipline, or
// grows the number of unsynchronized access sites shows up as a
// reviewable hunk rather than a silent drift.

// CensusField is one manifested field.
type CensusField struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	// Sites counts every static access (selector) of the field in
	// non-test code; PlainWrites counts the subset that are plain
	// writes (assignment, ++/--, address-taken). Atomic fields show
	// zero plain writes by construction.
	Sites       int `json:"sites"`
	PlainWrites int `json:"plain_writes"`
}

// CensusStruct is one manifest-bearing struct.
type CensusStruct struct {
	Package string        `json:"package"`
	Type    string        `json:"type"`
	Fields  []CensusField `json:"fields"`
}

// CensusTotals summarizes the whole census.
type CensusTotals struct {
	Structs     int            `json:"structs"`
	Fields      int            `json:"fields"`
	Sites       int            `json:"sites"`
	PlainWrites int            `json:"plain_writes"`
	ByClass     map[string]int `json:"fields_by_class"`
}

// Census is the root of ANALYSIS.json.
type Census struct {
	Schema  int            `json:"schema"`
	Structs []CensusStruct `json:"structs"`
	Totals  CensusTotals   `json:"totals"`
}

// BuildCensus builds the field-access census over the audited packages
// in pkgs. Output is deterministic: structs sort by (package, type),
// fields keep declaration order.
func BuildCensus(fset *token.FileSet, pkgs []*analysis.Package) Census {
	census := Census{
		Schema: 1,
		Totals: CensusTotals{ByClass: map[string]int{}},
	}
	for _, pkg := range pkgs {
		if !auditedPackages[normalizePath(pkg.Path)] {
			continue
		}
		census.Structs = append(census.Structs, censusPackage(fset, pkg)...)
	}
	sort.Slice(census.Structs, func(i, j int) bool {
		a, b := census.Structs[i], census.Structs[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Type < b.Type
	})
	for _, s := range census.Structs {
		census.Totals.Structs++
		for _, f := range s.Fields {
			census.Totals.Fields++
			census.Totals.Sites += f.Sites
			census.Totals.PlainWrites += f.PlainWrites
			census.Totals.ByClass[f.Class]++
		}
	}
	return census
}

// censusPackage builds the census entries for one package.
func censusPackage(fset *token.FileSet, pkg *analysis.Package) []CensusStruct {
	var files []*ast.File
	for _, f := range pkg.Files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	structs := collectStructs(files)

	type counter struct{ sites, writes int }
	counts := map[fieldKey]*counter{}
	index := map[fieldKey]*CensusField{}
	var out []CensusStruct
	for _, sd := range structs {
		if !sd.bearing {
			continue
		}
		cs := CensusStruct{Package: normalizePath(pkg.Path), Type: sd.name}
		for _, f := range sd.fields {
			if !f.annotated || !f.clsOK {
				continue
			}
			cs.Fields = append(cs.Fields, CensusField{Name: f.name, Class: f.cls.String()})
			counts[fieldKey{sd.name, f.name}] = &counter{}
		}
		if len(cs.Fields) > 0 {
			out = append(out, cs)
			for i := range out[len(out)-1].Fields {
				f := &out[len(out)-1].Fields[i]
				index[fieldKey{sd.name, f.Name}] = f
			}
		}
	}

	analysis.InspectWithStack(files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pkg.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		owner := analysis.NamedOf(s.Recv())
		if owner == nil || owner.Obj().Pkg() != pkg.Types {
			return true
		}
		c, ok := counts[fieldKey{owner.Obj().Name(), sel.Sel.Name}]
		if !ok {
			return true
		}
		c.sites++
		if len(stack) > 0 && isWrite(stack[len(stack)-1], sel) {
			c.writes++
		}
		return true
	})
	for key, c := range counts {
		f := index[key]
		f.Sites = c.sites
		f.PlainWrites = c.writes
	}
	return out
}
