package fieldclass_test

import (
	"testing"

	"lcws/internal/analysis/analysistest"
	"lcws/internal/analysis/fieldclass"
)

func TestFieldClass(t *testing.T) {
	analysistest.Run(t, "testdata", fieldclass.Analyzer,
		"lcws/internal/core", "lcws/internal/injector")
}
