// Package fieldclass enforces declared concurrency manifests on the
// scheduler's hot structs.
//
// A struct opts in by carrying a //lcws:manifest marker in its doc
// comment (the core scheduler structs are *required* to carry one; see
// requiredManifests). Every field of a manifest-bearing struct must
// then declare its synchronization discipline with a //lcws:field
// comment:
//
//	//lcws:field atomic        — internally synchronized (sync/atomic
//	                             value, sync.Mutex/Once/WaitGroup, or a
//	                             type with its own locking): the field
//	                             may be touched only through its
//	                             methods, never read, written, or
//	                             aliased as a plain value.
//	//lcws:field owner         — plain owner-only state: every access
//	                             must be on the receiver of an enclosing
//	                             method of the declaring type, outside
//	                             function literals (the owneronly
//	                             receiver-context rule). The variant
//	                             owner(T) relaxes the receiver-identity
//	                             requirement to "inside a method of T or
//	                             of the declaring type", for fields the
//	                             owning T manipulates through locals
//	                             (e.g. the task freelist links).
//	//lcws:field thief-shared  — shared by protocol: the field is part
//	                             of a documented cross-goroutine
//	                             handshake (publication before release,
//	                             freeze protocol, fork-join transitive
//	                             happens-before) that per-site syntax
//	                             cannot check. Declared, censused, and
//	                             left to the race detector + the other
//	                             analyzers.
//	//lcws:field guarded(g)    — protected by the sibling field g: the
//	                             enclosing function must lexically
//	                             acquire g (g.Lock / g.RLock / g.Do)
//	                             before the access, or declare that its
//	                             caller holds g with //lcws:locked g in
//	                             its doc comment.
//	//lcws:field immutable     — written only during construction
//	                             (functions named New*/new*, methods
//	                             named init); read-only afterwards. For
//	                             slices and pointers the *field value*
//	                             is immutable; what it points at is
//	                             governed by its own discipline.
//	//lcws:field epoch-guarded — immutable within a worker-set epoch:
//	                             written during construction and by the
//	                             elastic pool's retire/regrow path,
//	                             which runs only after the owning
//	                             goroutine has exited and the epoch has
//	                             quiesced (see core.workerSet). Writes
//	                             outside construction must sit in a
//	                             function whose doc comment carries the
//	                             //lcws:epoch-guarded directive — the
//	                             documented quiescence proof; reads are
//	                             unrestricted (stale epochs are kept
//	                             valid by the reclamation protocol).
//
// A //lcws:presync comment on (or directly above) an access line
// exempts that site — the presync analyzer then independently verifies
// the annotation's happens-before claim, so the escape hatch is itself
// machine-checked.
//
// Unannotated fields on manifest-bearing structs are reported: future
// PRs cannot add shared state without declaring how it is synchronized.
package fieldclass

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lcws/internal/analysis"
)

// Annotation markers. ManifestMarker goes in the struct's doc comment,
// FieldMarker on each field, LockedMarker on a function whose caller
// holds the named guard.
const (
	ManifestMarker = "//lcws:manifest"
	FieldMarker    = "//lcws:field"
	LockedMarker   = "//lcws:locked"
	presyncMarker  = "//lcws:presync"
	// EpochGuardedMarker, in a function's doc comment, declares that the
	// function runs only under the epoch-guarded quiescence discipline
	// (owner goroutine exited, worker-set epoch drained); it licenses
	// writes to epoch-guarded fields and calls to epoch-guarded methods
	// (see the owneronly analyzer) inside that function.
	EpochGuardedMarker = "//lcws:epoch-guarded"
)

// auditedPackages limits the analyzer to the concurrency core, like
// atomicfield. Workloads and harnesses use ordinary Go idioms.
var auditedPackages = map[string]bool{
	"lcws/internal/core":     true,
	"lcws/internal/deque":    true,
	"lcws/internal/injector": true,
	"lcws/internal/trace":    true,
}

// requiredManifests lists structs that must carry a manifest when they
// exist in their package: removing the //lcws:manifest marker from a
// hot struct is itself a finding, so the contract cannot silently rot.
var requiredManifests = map[string]map[string]bool{
	"lcws/internal/core": {
		"Worker": true, "workerSlot": true, "Scheduler": true,
		"Job": true, "jobShard": true, "Task": true, "recycleShard": true,
		"workerSet": true,
	},
	"lcws/internal/deque": {
		"SplitDeque": true, "ChaseLev": true,
		"splitBuf": true, "clBuf": true,
	},
	"lcws/internal/injector": {"Queue": true, "QoS": true, "classShard": true},
	"lcws/internal/trace": {
		"Recorder": true, "ring": true, "slot": true, "atomicHist": true,
	},
}

var Analyzer = &analysis.Analyzer{
	Name: "fieldclass",
	Doc: "check field accesses against declared concurrency manifests\n\n" +
		"Every field of a manifest-bearing struct declares its synchronization discipline " +
		"(//lcws:field atomic | owner | thief-shared | guarded(mu) | immutable | epoch-guarded); the " +
		"analyzer classifies every read/write site in the package and reports accesses " +
		"that violate the declared class, plus any field that has no declaration at all. " +
		"The paper removes synchronization from the hot path, so each plain access is " +
		"load-bearing: the manifest records, and this analyzer enforces, its justification.",
	Run: run,
}

// class is one parsed //lcws:field declaration.
type class struct {
	kind string // atomic | owner | thief-shared | guarded | immutable
	arg  string // guard field for guarded, owning type for owner(T)
}

func (c class) String() string {
	if c.arg != "" {
		return c.kind + "(" + c.arg + ")"
	}
	return c.kind
}

// fieldDecl is one struct field as declared in source.
type fieldDecl struct {
	name      string
	pos       token.Pos
	annotated bool
	rawClass  string // annotation text after the marker, pre-parse
	cls       class
	clsOK     bool
}

// structDecl is one struct type with its manifest state.
type structDecl struct {
	name    string
	pos     token.Pos
	bearing bool // has //lcws:manifest or >= 1 annotated field
	fields  []fieldDecl
}

func run(pass *analysis.Pass) error {
	if !auditedPackages[normalizePath(pass.Pkg.Path())] {
		return nil
	}
	files := nonTestFiles(pass)
	structs := collectStructs(files)

	required := requiredManifests[normalizePath(pass.Pkg.Path())]
	classOf := map[fieldKey]class{}
	for _, sd := range structs {
		if required[sd.name] && !sd.bearing {
			pass.Reportf(sd.pos, "struct %s must carry a %s concurrency manifest", sd.name, ManifestMarker)
			continue
		}
		if !sd.bearing {
			continue
		}
		for _, f := range sd.fields {
			switch {
			case !f.annotated:
				pass.Reportf(f.pos, "field %s.%s has no %s class; every field of a manifest-bearing struct must declare its concurrency discipline", sd.name, f.name, FieldMarker)
			case !f.clsOK:
				pass.Reportf(f.pos, "unknown %s class %q (want atomic | owner | owner(T) | thief-shared | guarded(g) | immutable | epoch-guarded)", FieldMarker, f.rawClass)
			default:
				classOf[fieldKey{sd.name, f.name}] = f.cls
			}
		}
	}

	analysis.InspectWithStack(files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		owner := analysis.NamedOf(s.Recv())
		if owner == nil || owner.Obj().Pkg() != pass.Pkg {
			return true
		}
		cls, ok := classOf[fieldKey{owner.Obj().Name(), sel.Sel.Name}]
		if !ok {
			return true
		}
		checkSite(pass, sel, owner.Obj().Name(), cls, stack)
		return true
	})
	return nil
}

// fieldKey names a field of a package-local struct. The package is
// implicit: manifests are collected per pass, and every manifested
// field is unexported, so all access sites are in-package.
type fieldKey struct {
	typ, field string
}

// checkSite validates one field access against its declared class.
func checkSite(pass *analysis.Pass, sel *ast.SelectorExpr, typ string, cls class, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	if analysis.IsOffsetofArg(pass.TypesInfo, stack) {
		return
	}
	if hasLineComment(pass, sel.Pos(), presyncMarker) {
		// The presync analyzer verifies the claimed happens-before edge.
		return
	}
	field := sel.Sel.Name
	parent := stack[len(stack)-1]
	switch cls.kind {
	case "thief-shared":
		// Declared racy-by-protocol: censused, not site-checked.
	case "atomic":
		if m, ok := parent.(*ast.SelectorExpr); ok && m.X == sel {
			return
		}
		pass.Reportf(sel.Pos(), "field %s.%s is declared %s atomic: access it only through its methods", typ, field, FieldMarker)
	case "immutable":
		if !isWrite(parent, sel) {
			return
		}
		if inConstructor(stack) {
			return
		}
		pass.Reportf(sel.Pos(), "field %s.%s is declared %s immutable but is written outside construction (New*/init)", typ, field, FieldMarker)
	case "epoch-guarded":
		if !isWrite(parent, sel) {
			return
		}
		if inConstructor(stack) {
			return
		}
		if fd := analysis.EnclosingFuncDecl(stack); fd != nil && groupHasMarker(fd.Doc, EpochGuardedMarker) && !inFuncLit(stack, fd) {
			return
		}
		pass.Reportf(sel.Pos(), "field %s.%s is declared %s epoch-guarded but is written outside construction and outside a function carrying the %s quiescence directive", typ, field, FieldMarker, EpochGuardedMarker)
	case "owner":
		checkOwnerSite(pass, sel, typ, cls, stack)
	case "guarded":
		fd := analysis.EnclosingFuncDecl(stack)
		if fd == nil {
			pass.Reportf(sel.Pos(), "field %s.%s is declared %s guarded(%s) but is accessed outside any function", typ, field, FieldMarker, cls.arg)
			return
		}
		if hasLockedAnnotation(fd, cls.arg) {
			return
		}
		if guardHeldBefore(fd, cls.arg, sel.Pos()) {
			return
		}
		pass.Reportf(sel.Pos(), "field %s.%s is declared %s guarded(%s) but %s is not acquired before this access (and %s does not declare %s %s)", typ, field, FieldMarker, cls.arg, cls.arg, fd.Name.Name, LockedMarker, cls.arg)
	}
}

// checkOwnerSite applies the owner-context rule. Bare `owner` demands
// the owneronly receiver-identity shape: the access is on the receiver
// of an enclosing method of the declaring type, outside function
// literals. `owner(T)` relaxes identity to containment — the access
// merely has to sit inside a method of T (or of the declaring type),
// outside function literals — for fields the owner reaches through
// locals, like freelist links walked as t.next.
func checkOwnerSite(pass *analysis.Pass, sel *ast.SelectorExpr, typ string, cls class, stack []ast.Node) {
	field := sel.Sel.Name
	fd := analysis.EnclosingFuncDecl(stack)
	if fd == nil {
		pass.Reportf(sel.Pos(), "owner field %s.%s accessed outside any method of %s", typ, field, typ)
		return
	}
	if cls.arg != "" {
		rt := recvTypeName(pass, fd)
		if rt != cls.arg && rt != typ {
			pass.Reportf(sel.Pos(), "owner field %s.%s accessed outside the methods of its owner %s", typ, field, cls.arg)
			return
		}
		if inFuncLit(stack, fd) {
			pass.Reportf(sel.Pos(), "owner field %s.%s accessed inside a function literal; closures may escape the owner's goroutine", typ, field)
		}
		return
	}
	recvObj := recvObjOf(pass, fd, typ)
	if recvObj == nil {
		pass.Reportf(sel.Pos(), "owner field %s.%s accessed outside a %s method", typ, field, typ)
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recvObj {
		pass.Reportf(sel.Pos(), "owner field %s.%s accessed on an expression that is not the owning receiver %s", typ, field, recvObj.Name())
		return
	}
	if inFuncLit(stack, fd) {
		pass.Reportf(sel.Pos(), "owner field %s.%s accessed inside a function literal; closures may escape the owner's goroutine", typ, field)
	}
}

// isWrite reports whether sel is written (assignment target, inc/dec,
// or address-taken) given its direct parent.
func isWrite(parent ast.Node, sel *ast.SelectorExpr) bool {
	switch parent := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == sel {
				return true
			}
		}
	case *ast.IncDecStmt:
		return parent.X == sel
	case *ast.UnaryExpr:
		return parent.Op == token.AND && parent.X == sel
	}
	return false
}

// inConstructor reports whether the enclosing function is construction
// context: a function named New*/new*, or a method named init (the
// worker pool builds its workers in place via Worker.init before their
// goroutines start).
func inConstructor(stack []ast.Node) bool {
	fd := analysis.EnclosingFuncDecl(stack)
	if fd == nil {
		return false
	}
	name := fd.Name.Name
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
}

// recvObjOf returns the receiver object of fd when fd is a method of
// the named type, else nil.
func recvObjOf(pass *analysis.Pass, fd *ast.FuncDecl, typ string) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	recvObj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil {
		return nil
	}
	if n := analysis.NamedOf(recvObj.Type()); n == nil || n.Obj().Name() != typ {
		return nil
	}
	return recvObj
}

// recvTypeName returns the name of fd's receiver type, or "".
func recvTypeName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	if rt := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type); rt != nil {
		if n := analysis.NamedOf(rt); n != nil {
			return n.Obj().Name()
		}
	}
	return ""
}

// inFuncLit reports whether the stack crosses a function literal
// between fd and the inspected node.
func inFuncLit(stack []ast.Node, fd *ast.FuncDecl) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == fd {
			return false
		}
		if _, ok := stack[i].(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// hasLockedAnnotation reports whether fd's doc comment declares
// "//lcws:locked <guard>": the function's contract is that its caller
// holds the guard (e.g. Queue.grow, called only with mu held).
func hasLockedAnnotation(fd *ast.FuncDecl, guard string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, LockedMarker)
		if !ok {
			continue
		}
		if fields := strings.Fields(rest); len(fields) > 0 && fields[0] == guard {
			return true
		}
	}
	return false
}

// guardHeldBefore reports whether fd's body lexically acquires the
// guard field (guard.Lock / guard.RLock / guard.Do) at a position
// before pos. The check is flow-insensitive on purpose: an early
// return between Lock and the access is the caller's bug to find with
// the race detector; what this catches is accesses with no acquisition
// on any path, which is the way such code is actually miswritten.
func guardHeldBefore(fd *ast.FuncDecl, guard string, pos token.Pos) bool {
	held := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if held {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() > pos {
			return true
		}
		m, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch m.Sel.Name {
		case "Lock", "RLock", "Do", "TryLock":
			// TryLock counts as an acquisition site like Lock: using the
			// guarded field without checking TryLock's result is, like an
			// early return between Lock and use, a flow bug left to the
			// race detector.
		default:
			return true
		}
		if g, ok := m.X.(*ast.SelectorExpr); ok && g.Sel.Name == guard {
			held = true
			return false
		}
		return true
	})
	return held
}

// hasLineComment reports whether a comment starting with marker sits on
// pos's line or the line directly above it.
func hasLineComment(pass *analysis.Pass, pos token.Pos, marker string) bool {
	p := pass.Fset.Position(pos)
	for _, f := range pass.Files {
		if pass.Fset.Position(f.Pos()).Filename != p.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, marker) {
					continue
				}
				cl := pass.Fset.Position(c.Pos()).Line
				if cl == p.Line || cl == p.Line-1 {
					return true
				}
			}
		}
	}
	return false
}

// nonTestFiles filters pass.Files to the non-test compilation unit;
// tests construct schedulers in ad-hoc ways the manifest rules would
// misfire on, and the race detector covers them dynamically.
func nonTestFiles(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// collectStructs walks the files and returns every struct type
// declaration with its manifest annotations parsed.
func collectStructs(files []*ast.File) []*structDecl {
	var out []*structDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				sd := &structDecl{name: ts.Name.Name, pos: ts.Name.Pos()}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				sd.bearing = groupHasMarker(doc, ManifestMarker)
				for _, fld := range st.Fields.List {
					parseField(sd, fld)
				}
				out = append(out, sd)
			}
		}
	}
	return out
}

// parseField appends fld's named fields (skipping blank padding) to sd,
// with the //lcws:field annotation parsed from the field's doc or
// trailing comment. An annotated field makes the struct
// manifest-bearing even without the struct-level marker.
func parseField(sd *structDecl, fld *ast.Field) {
	raw, annotated := fieldAnnotation(fld)
	var cls class
	clsOK := false
	if annotated {
		cls, clsOK = parseClass(raw)
		sd.bearing = true
	}
	add := func(name string, pos token.Pos) {
		if name == "_" || name == "" {
			return
		}
		sd.fields = append(sd.fields, fieldDecl{
			name: name, pos: pos, annotated: annotated,
			rawClass: raw, cls: cls, clsOK: clsOK,
		})
	}
	if len(fld.Names) == 0 {
		add(embeddedName(fld.Type), fld.Pos())
		return
	}
	for _, n := range fld.Names {
		add(n.Name, n.Pos())
	}
}

// fieldAnnotation extracts the text after //lcws:field from the
// field's doc or line comment.
func fieldAnnotation(fld *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, FieldMarker); ok {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

// parseClass parses the first token of a //lcws:field annotation.
// Anything after the class token is free-form rationale.
func parseClass(raw string) (class, bool) {
	fields := strings.Fields(raw)
	if len(fields) == 0 {
		return class{}, false
	}
	tok := fields[0]
	kind, arg := tok, ""
	if i := strings.IndexByte(tok, '('); i >= 0 {
		if !strings.HasSuffix(tok, ")") {
			return class{}, false
		}
		kind, arg = tok[:i], tok[i+1:len(tok)-1]
	}
	switch kind {
	case "atomic", "thief-shared", "immutable", "epoch-guarded":
		if arg != "" {
			return class{}, false
		}
	case "owner":
		// arg optional: owner or owner(T)
	case "guarded":
		if arg == "" {
			return class{}, false
		}
	default:
		return class{}, false
	}
	return class{kind: kind, arg: arg}, true
}

// groupHasMarker reports whether any comment line in cg starts with
// marker.
func groupHasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, marker) {
			return true
		}
	}
	return false
}

// embeddedName derives the field name of an embedded type expression.
func embeddedName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.IndexExpr:
		return embeddedName(t.X)
	case *ast.IndexListExpr:
		return embeddedName(t.X)
	}
	return ""
}

// normalizePath strips cmd/go's test-variant suffix ("pkg [pkg.test]")
// so the audited-package check also applies to test builds under go vet.
func normalizePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
