// Package injector is a seeded-violation stand-in for the submission
// ring: a mutex-guarded ring buffer with an atomic emptiness probe.
package injector

import (
	"sync"
	"sync/atomic"
)

// Queue models the MPMC submission ring.
//
//lcws:manifest
type Queue struct {
	mu   sync.Mutex   //lcws:field atomic
	buf  []int        //lcws:field guarded(mu)
	head int          //lcws:field guarded(mu)
	n    int          //lcws:field guarded(mu)
	size atomic.Int64 //lcws:field atomic
}

func (q *Queue) Push(v int) {
	q.mu.Lock()
	if q.n == len(q.buf) { // ok: mu acquired above
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	q.size.Store(int64(q.n))
	q.mu.Unlock()
}

// grow doubles the ring; called only with the lock held.
//
//lcws:locked mu
func (q *Queue) grow() {
	nb := make([]int, 2*len(q.buf)+8)
	copy(nb, q.buf[q.head:]) // ok: caller holds mu per //lcws:locked
	q.buf = nb
	q.head = 0
}

// peek reads the ring without the lock: seeded violation.
func (q *Queue) peek() int {
	return q.buf[q.head] // want `field Queue.buf is declared //lcws:field guarded\(mu\) but mu is not acquired` `field Queue.head is declared //lcws:field guarded\(mu\) but mu is not acquired`
}
