// Package core is a seeded-violation stand-in for lcws/internal/core:
// each hot struct carries a concurrency manifest and the functions
// below exercise one good and one bad access per field class.
package core

import (
	"sync"
	"sync/atomic"
)

// Task models the published task frame. next is freelist linkage that
// the owning worker walks through locals, hence owner(Worker).
//
//lcws:manifest
type Task struct {
	fn   func(*Worker) //lcws:field thief-shared — published before the release edge
	next *Task         //lcws:field owner(Worker)
	done atomic.Uint64 //lcws:field atomic
}

// Worker models the per-worker hot struct.
//
//lcws:manifest
type Worker struct {
	pending    atomic.Uint32 //lcws:field atomic
	id         int           //lcws:field immutable
	sinceYield int           //lcws:field owner
	freelist   *Task         //lcws:field owner
	ring       []int         //lcws:field epoch-guarded — swapped only on quiesced epochs
	_          [8]byte       // padding: blank fields need no class
	unclassed  int           // want `field Worker.unclassed has no //lcws:field class`
	//lcws:field sometimes
	weird int // want `unknown //lcws:field class "sometimes"`
}

// Job models the per-job control block.
//
//lcws:manifest
type Job struct {
	errOnce sync.Once     //lcws:field atomic
	failErr error         //lcws:field guarded(errOnce)
	done    chan struct{} //lcws:field immutable
}

// jobShard is on the required-manifest list but carries no manifest.
type jobShard struct { // want `struct jobShard must carry a //lcws:manifest concurrency manifest`
	created uint64
}

func NewWorker(id int) *Worker {
	w := &Worker{}
	w.id = id               // ok: construction context
	w.ring = make([]int, 1) // ok: construction context
	return w
}

func (w *Worker) run() {
	w.sinceYield++       // ok: owner access on the receiver
	w.pending.Store(1)   // ok: atomic method
	_ = w.pending.Load() // ok
	n := w.pending       // want `field Worker.pending is declared //lcws:field atomic: access it only through its methods`
	_ = n
	w.id = 7 // want `field Worker.id is declared //lcws:field immutable but is written outside construction`
	go func() {
		w.sinceYield++ // want `owner field Worker.sinceYield accessed inside a function literal`
	}()
}

func (w *Worker) steal(v *Worker) {
	v.sinceYield = 0 // want `owner field Worker.sinceYield accessed on an expression that is not the owning receiver w`
}

func drain(w *Worker) {
	w.freelist = nil // want `owner field Worker.freelist accessed outside a Worker method`
}

func bootstrap(w *Worker) {
	w.id = 1 //lcws:presync pool construction, before worker goroutines exist
}

// newTask pops the freelist; walking t.next through a local is the
// owner(Worker) allowance.
func (w *Worker) newTask() *Task {
	t := w.freelist
	if t != nil {
		w.freelist = t.next // ok: owner(Worker) inside a Worker method
		t.next = nil        // ok
	}
	return t
}

func poach(t *Task) {
	t.next = nil // want `owner field Task.next accessed outside the methods of its owner Worker`
}

func (j *Job) fail(err error) {
	j.errOnce.Do(func() {
		j.failErr = err // ok: errOnce acquired by the enclosing Do
	})
}

func (j *Job) peek() error {
	return j.failErr // want `field Job.failErr is declared //lcws:field guarded\(errOnce\) but errOnce is not acquired`
}

func (w *Worker) peekRing() int {
	if len(w.ring) == 0 { // ok: epoch-guarded reads are unrestricted
		return 0
	}
	return w.ring[0] // ok
}

// reclaimRing mimics the elastic pool's reclamation path: the directive
// below is the documented quiescence proof that licenses the write.
//
//lcws:epoch-guarded — quiescence proved by the caller (test stand-in)
func reclaimRing(w *Worker) {
	w.ring = nil // ok: write licensed by the enclosing directive
}

func badReclaimRing(w *Worker) {
	w.ring = nil // want `field Worker.ring is declared //lcws:field epoch-guarded but is written outside construction and outside a function carrying the //lcws:epoch-guarded quiescence directive`
}

//lcws:epoch-guarded — the directive does not reach into closures
func badReclaimRingClosure(w *Worker) func() {
	return func() {
		w.ring = nil // want `field Worker.ring is declared //lcws:field epoch-guarded but is written outside construction and outside a function carrying the //lcws:epoch-guarded quiescence directive`
	}
}

var _ = jobShard{}
