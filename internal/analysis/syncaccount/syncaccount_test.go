package syncaccount_test

import (
	"testing"

	"lcws/internal/analysis/analysistest"
	"lcws/internal/analysis/syncaccount"
)

func TestSyncAccount(t *testing.T) {
	analysistest.Run(t, "testdata", syncaccount.Analyzer, "lcws/internal/deque")
}
