// Package syncaccount cross-checks the deque implementations against
// the paper's synchronization-counting model (Lemmas 1-3): the
// instrumentation counters are the repo's evidence that LCWS owner
// operations are fence- and CAS-free while Chase-Lev pays a fence per
// push/pop, so the accounting calls themselves must be trustworthy.
// Two rules are enforced in lcws/internal/deque:
//
//  1. Every atomic CompareAndSwap is preceded, in the same function, by
//     a counters.CAS accounting call (Inc or Add). Accounting before
//     the attempt means aborted races are counted too, matching the
//     model's "CAS attempts" semantics.
//  2. Each deque method accounts exactly the event classes the counting
//     model assigns it: e.g. SplitDeque.TryPushBottom/PopBottom/Expose
//     must account neither Fence nor CAS (Lemma 1 — array growth
//     publishes with a plain pointer store), while PopPublicBottom must
//     account both (Lemma 2), and ChaseLev.TryPushBottom must account
//     a Fence.
//
// Test files are exempt: tests drive the deques through hand-built
// states and deliberately bypass the accounting contract.
package syncaccount

import (
	"go/ast"
	"go/types"
	"strings"

	"lcws/internal/analysis"
)

const (
	dequePkg    = "lcws/internal/deque"
	countersPkg = "lcws/internal/counters"
)

// rule says which synchronization events a method must and must not
// account, per the counting model in internal/counters/model.go.
type rule struct {
	mustFence, mustCAS     bool
	forbidFence, forbidCAS bool
}

// rules maps receiver type name -> method name -> accounting rule.
// Methods not listed are only subject to the CAS-ordering rule.
var rules = map[string]map[string]rule{
	"SplitDeque": {
		"PushBottom":    {forbidFence: true, forbidCAS: true}, // Lemma 1 (delegates to TryPushBottom)
		"TryPushBottom": {forbidFence: true, forbidCAS: true}, // Lemma 1: growth publishes with a plain store
		// SpillOldest reclaims via UnexposeAll (accounted there) and then
		// orders its age store against the publicBot store with one fence;
		// no thief CAS can target the bumped tag, so no CAS is spent.
		"SpillOldest":     {mustFence: true, forbidCAS: true},
		"PopBottom":       {forbidFence: true, forbidCAS: true}, // Lemma 1
		"Expose":          {forbidFence: true, forbidCAS: true}, // footnote 3
		"PopPublicBottom": {mustFence: true, mustCAS: true},     // Lemma 2
		"PopTop":          {mustCAS: true, forbidFence: true},   // Lemma 3
		"PopTopHalf":      {mustCAS: true, forbidFence: true},   // Lemma 3: batch rides the one claim CAS
		"UnexposeAll":     {mustFence: true, mustCAS: true},     // Lace reclaim
	},
	"ChaseLev": {
		// PushBottom delegates to TryPushBottom, which accounts the WS
		// push fence (release ordering on bot); growth itself publishes
		// with a plain pointer store and costs nothing extra.
		"TryPushBottom": {mustFence: true, forbidCAS: true},
		// SpillOldest is owner self-steal through PopTop: the fences and
		// CAS are accounted inside PopTop per call, not lexically here.
		"PopBottom": {mustFence: true, mustCAS: true},
		// popBottomBatch is the batch-mode owner pop PopBottom delegates
		// to: the usual store-load fence plus a tag-bump CAS on every pop
		// (WSBatchPopCAS), not just for the last element.
		"popBottomBatch": {mustFence: true, mustCAS: true},
		"PopTop":         {mustFence: true, mustCAS: true},
		// PopTopN costs the same as a single steal: the batch rides the
		// one fence + one CAS of the claim.
		"PopTopN": {mustFence: true, mustCAS: true},
	},
}

var Analyzer = &analysis.Analyzer{
	Name: "syncaccount",
	Doc: "check that deque synchronization operations and their counter accounting agree\n\n" +
		"The paper's claims rest on counting fences and CAS attempts; this analyzer " +
		"verifies every CompareAndSwap in internal/deque is preceded by a counters.CAS " +
		"accounting call and that each deque method accounts exactly the event classes " +
		"the counting model assigns to it.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if normalizePath(pass.Pkg.Path()) != dequePkg {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// event is a synchronization event class named by the counting model.
type event string

const (
	evFence event = "Fence"
	evCAS   event = "CAS"
)

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Collect, in source order, the accounting calls and CAS attempts.
	type acct struct {
		ev  event
		pos ast.Node
	}
	var accts []acct
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case isAccountingCall(pass, call, sel):
			if ev, ok := eventArg(pass, call); ok {
				accts = append(accts, acct{ev, call})
			}
		case sel.Sel.Name == "CompareAndSwap" && analysis.IsAtomicType(pass.TypesInfo.TypeOf(sel.X)):
			// Rule 1: accounting must precede the attempt.
			ok := false
			for _, a := range accts {
				if a.ev == evCAS && a.pos.Pos() < call.Pos() {
					ok = true
					break
				}
			}
			if !ok {
				pass.Reportf(call.Pos(), "CompareAndSwap without a preceding counters.CAS accounting call in the same function")
			}
		}
		return true
	})

	// Rule 2: the method's accounted events must match the model.
	methods, ok := rules[recvTypeName(fd)]
	if !ok {
		return
	}
	r, ok := methods[fd.Name.Name]
	if !ok {
		return
	}
	name := recvTypeName(fd) + "." + fd.Name.Name
	seen := map[event]bool{}
	for _, a := range accts {
		seen[a.ev] = true
		if (a.ev == evFence && r.forbidFence) || (a.ev == evCAS && r.forbidCAS) {
			pass.Reportf(a.pos.Pos(), "%s must not account counters.%s: the counting model makes this operation %s-free", name, a.ev, strings.ToLower(string(a.ev)))
		}
	}
	if r.mustFence && !seen[evFence] {
		pass.Reportf(fd.Name.Pos(), "%s must account counters.Fence per the counting model, but accounts none", name)
	}
	if r.mustCAS && !seen[evCAS] {
		pass.Reportf(fd.Name.Pos(), "%s must account counters.CAS per the counting model, but accounts none", name)
	}
}

// isAccountingCall reports whether call is counters.Worker.Inc or .Add.
func isAccountingCall(pass *analysis.Pass, call *ast.CallExpr, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Inc" && sel.Sel.Name != "Add" {
		return false
	}
	n := analysis.NamedOf(pass.TypesInfo.TypeOf(sel.X))
	return n != nil && n.Obj().Name() == "Worker" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == countersPkg
}

// eventArg resolves the first argument of an accounting call to a
// Fence/CAS event constant; other events (TaskPushed, Exposure, ...)
// are outside the synchronization model.
func eventArg(pass *analysis.Pass, call *ast.CallExpr) (event, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	sel, ok := call.Args[0].(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != countersPkg {
		return "", false
	}
	switch c.Name() {
	case "Fence":
		return evFence, true
	case "CAS":
		return evCAS, true
	}
	return "", false
}

// recvTypeName returns the receiver's type name, unwrapping pointers
// and generic instantiations, or "" for non-methods.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// normalizePath strips cmd/go's test-variant suffix so the analyzer
// recognises the deque package under go vet's test builds.
func normalizePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
