// Package counters is a miniature stand-in for lcws/internal/counters.
package counters

type Event int

const (
	Fence Event = iota
	CAS
	TaskPushed
)

type Worker struct{ v [8]uint64 }

func (w *Worker) Inc(e Event)           { w.v[e]++ }
func (w *Worker) Add(e Event, n uint64) { w.v[e] += n }
