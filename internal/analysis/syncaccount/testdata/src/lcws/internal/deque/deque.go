// Package deque is a miniature stand-in for lcws/internal/deque with
// seeded syncaccount violations.
package deque

import (
	"sync/atomic"

	"lcws/internal/counters"
)

type SplitDeque struct {
	age       atomic.Uint64
	bot       atomic.Uint64
	publicBot atomic.Uint64
}

// ok: owner push is sync-free; TaskPushed is outside the model.
func (d *SplitDeque) PushBottom(c *counters.Worker) {
	c.Inc(counters.TaskPushed)
	d.bot.Store(d.bot.Load() + 1)
}

// bad: the fence-free owner pop accounts a fence.
func (d *SplitDeque) PopBottom(c *counters.Worker) {
	c.Inc(counters.Fence) // want `SplitDeque.PopBottom must not account counters.Fence`
	d.bot.Store(d.bot.Load() - 1)
}

// bad: exposure performs no synchronization at all.
func (d *SplitDeque) Expose(c *counters.Worker) {
	c.Add(counters.CAS, 1) // want `SplitDeque.Expose must not account counters.CAS`
	d.publicBot.Store(d.publicBot.Load() + 1)
}

// ok: the steal accounts its CAS attempt before making it.
func (d *SplitDeque) PopTop(c *counters.Worker) bool {
	old := d.age.Load()
	c.Add(counters.CAS, 1)
	return d.age.CompareAndSwap(old, old+1)
}

// bad: no fence or CAS accounting on the fence-bearing path.
func (d *SplitDeque) PopPublicBottom(c *counters.Worker) bool { // want `must account counters.Fence` `must account counters.CAS`
	old := d.age.Load()
	return d.age.CompareAndSwap(old, old+1) // want `CompareAndSwap without a preceding counters.CAS accounting`
}

// bad: the batched claim rides one CAS like PopTop — no fence allowed,
// and the CAS must be accounted.
func (d *SplitDeque) PopTopHalf(c *counters.Worker) bool { // want `SplitDeque.PopTopHalf must account counters.CAS`
	c.Inc(counters.Fence) // want `SplitDeque.PopTopHalf must not account counters.Fence`
	old := d.age.Load()
	return d.age.CompareAndSwap(old, old+2) // want `CompareAndSwap without a preceding counters.CAS accounting`
}

// bad ordering: accounting after the attempt misses aborted races.
func (d *SplitDeque) UnexposeAll(c *counters.Worker) {
	old := d.age.Load()
	d.age.CompareAndSwap(old, old+1) // want `CompareAndSwap without a preceding counters.CAS accounting`
	c.Inc(counters.Fence)
	c.Inc(counters.CAS)
}

type ChaseLev struct {
	top atomic.Int64
	bot atomic.Int64
}

// ok: Chase-Lev push pays its store-store fence.
func (d *ChaseLev) PushBottom(c *counters.Worker) {
	c.Add(counters.Fence, 1)
	d.bot.Store(d.bot.Load() + 1)
}

// bad: the unavoidable store-load fence is not accounted.
func (d *ChaseLev) PopBottom(c *counters.Worker) bool { // want `ChaseLev.PopBottom must account counters.Fence`
	old := d.top.Load()
	c.Inc(counters.CAS)
	return d.top.CompareAndSwap(old, old+1)
}

// ok: the batch-mode owner pop pays its fence and tag-bump CAS.
func (d *ChaseLev) popBottomBatch(c *counters.Worker) bool {
	c.Add(counters.Fence, 1)
	old := d.top.Load()
	c.Add(counters.CAS, 1)
	return d.top.CompareAndSwap(old, old+1)
}

// bad: the batched steal must pay the same fence + CAS as PopTop.
func (d *ChaseLev) PopTopN(c *counters.Worker) bool { // want `ChaseLev.PopTopN must account counters.Fence` `ChaseLev.PopTopN must account counters.CAS`
	old := d.top.Load()
	return d.top.CompareAndSwap(old, old+2) // want `CompareAndSwap without a preceding counters.CAS accounting`
}

// ok: unlisted methods only face the CAS-ordering rule.
func (d *ChaseLev) Size() int64 {
	return d.bot.Load() - d.top.Load()
}
