// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) plus the two drivers needed to run analyzers over this
// module: a source loader for standalone runs and tests (load.go), and
// a unitchecker-compatible driver speaking `go vet -vettool`'s vet.cfg
// protocol (unit.go). The sandboxed build environment has no module
// proxy access, so x/tools cannot be added to go.mod; everything here
// is built on go/ast, go/parser, go/types and go/importer only. The
// API mirrors x/tools closely enough that the analyzers in the
// subdirectories could be ported to a stock multichecker by swapping
// import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// newInfo returns a types.Info with every map allocated, so analyzers
// can rely on Uses/Defs/Selections/Types being populated.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// InspectWithStack walks every file, calling fn with each node and the
// stack of its ancestors (outermost first, not including n itself).
// Returning false skips the node's children. It substitutes for
// x/tools' inspector.WithStack.
func InspectWithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}

// EnclosingFuncDecl returns the innermost *ast.FuncDecl on the stack,
// or nil when the node is not inside a function declaration.
func EnclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// IsOffsetofArg reports whether the node whose ancestor stack is given
// (innermost last) sits directly inside an unsafe.Offsetof call.
// Offsetof queries struct layout without evaluating or aliasing its
// operand, so field-access disciplines exempt it; the layout regression
// tests depend on that.
func IsOffsetofArg(info *types.Info, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	b, ok := info.Uses[fun.Sel].(*types.Builtin)
	return ok && b.Name() == "Offsetof"
}

// Deref strips one level of pointer indirection.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedOf returns the named type of t after stripping pointers and
// aliases, or nil.
func NamedOf(t types.Type) *types.Named {
	t = Deref(types.Unalias(t))
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// IsAtomicType reports whether t (after stripping pointers) is one of
// the sync/atomic value types (Bool, Int32, ..., Pointer[T], Value).
func IsAtomicType(t types.Type) bool {
	n := NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}
