// publish.go seeds the PR-5 executor shapes: Job publication edges,
// per-worker jobShard accounting, and the injector's ring (an
// atomic-length mutex ring), so the analyzer's behavior on the
// persistent-executor patterns is pinned by tests.
package core

import "sync/atomic"

// Job mirrors the executor's job descriptor: atomic control words next
// to plain fields that are published to workers by a submit-time
// happens-before edge.
type Job struct {
	aborted atomic.Bool
	drained atomic.Uint64
	root    func()
	shards  []jobShard
}

// jobShard is atomic-free by design (fork-join transitive ordering
// justifies its plain words), so atomicfield does not audit it; the
// fieldclass manifest carries its discipline instead.
type jobShard struct {
	created   uint64
	completed uint64
}

func (j *Job) fail() {
	j.aborted.Store(true)
	j.root = nil // ok: Job's own method writing its own plain field
}

// badPublish writes the job payload outside Job's methods with no
// declared edge: exactly the bug class the submit path must not grow.
func badPublish(j *Job, fn func()) {
	j.root = fn // want `plain field Job.root written outside Job's methods`
}

// okPublish is the real submit shape: the plain payload stores carry a
// presync annotation because the atomic length publication in the
// injector (and ultimately the park-bitset scan) orders them.
func okPublish(j *Job, fn func(), nworkers int) {
	//lcws:presync submit path: published to workers by the injector push edge
	j.root = fn
	//lcws:presync submit path: published to workers by the injector push edge
	j.shards = make([]jobShard, nworkers)
}

// okShardAccount models the worker-side accounting: jobShard carries no
// atomics, so its plain words are not audited here (the done-channel
// close edge at settlement is what makes the cross-shard read safe).
func okShardAccount(j *Job, id int) {
	j.shards[id].created++
	j.shards[id].completed++
}

// injRing mirrors the injector queue: a mutex-guarded ring (the mutex
// is elided here) whose length is mirrored into an atomic word for the
// lock-free emptiness probe.
type injRing struct {
	size atomic.Int64
	buf  []func()
	head int
	n    int
}

func (q *injRing) push(fn func()) {
	q.buf[(q.head+q.n)%len(q.buf)] = fn
	q.n++
	q.size.Store(int64(q.n)) // ok: length mirror via atomic store
}

func badRingTouch(q *injRing) {
	q.head = 0 // want `plain field injRing.head written outside injRing's methods`
}

func badRingLen(q *injRing) int64 {
	return q.size.Load() + int64(q.n) // ok read of n; next line is the violation
}

func badRingSize(q *injRing) {
	q.size.Add(1)           // ok: atomic method
	q.size = atomic.Int64{} // want `atomic field injRing.size must be accessed only through its sync/atomic methods`
}
