// Package core is a miniature stand-in for lcws/internal/core with
// seeded atomicfield violations.
package core

import "sync/atomic"

type Worker struct {
	targeted atomic.Bool
	spins    uint32
	id       int
}

// plain is atomic-free, so none of its accesses are audited.
type plain struct {
	count int
}

func (w *Worker) ok() {
	w.targeted.Store(true)
	w.spins++
	w.id = 7
}

func (w *Worker) okValue() func() bool {
	return w.targeted.Load // ok: atomic method value
}

func (w *Worker) okOtherWorker(v *Worker) {
	v.spins = 0 // ok: inside a Worker method (type-scoped rule)
}

type Scheduler struct {
	finished  atomic.Bool
	parkWords []atomic.Uint64
	workers   []*Worker
}

// okParkingLot models the parking-lot bitset handshake: the words are
// touched only through atomic RMW/load methods.
func (s *Scheduler) okParkingLot(id int) {
	word := &s.parkWords[id/64] // ok: indexing the slice, not an atomic field value
	bit := uint64(1) << uint(id%64)
	for {
		old := word.Load()
		if word.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

func badParkWordsRebuild(s *Scheduler, n int) {
	s.parkWords = make([]atomic.Uint64, n) // want `plain field Scheduler.parkWords written outside Scheduler's methods`
}

func okParkWordsPresync(s *Scheduler, n int) {
	//lcws:presync constructor path; worker goroutines have not started
	s.parkWords = make([]atomic.Uint64, n)
}

func (s *Scheduler) run() {
	for _, w := range s.workers {
		w.spins = 0 // want `plain field Worker.spins written outside Worker's methods`
	}
	for _, w := range s.workers {
		//lcws:presync worker goroutines have not been started yet
		w.spins = 0 // ok: annotated happens-before edge
	}
	_ = s.finished.Load()
	s.workers = nil // ok: Scheduler's own method writing its own plain field
}

func badPlainAssign(w *Worker) {
	w.targeted = atomic.Bool{} // want `atomic field Worker.targeted must be accessed only through its sync/atomic methods`
}

func badAddressTaken(w *Worker) *atomic.Bool {
	return &w.targeted // want `atomic field Worker.targeted must be accessed only through its sync/atomic methods`
}

func badIncrement(w *Worker) {
	w.spins++ // want `plain field Worker.spins written outside Worker's methods`
}

func badPointerEscape(w *Worker) *uint32 {
	return &w.spins // want `plain field Worker.spins written outside Worker's methods`
}

func okRead(w *Worker) int {
	return w.id // ok: plain reads are not restricted
}

func okUnaudited(p *plain) {
	p.count++ // ok: struct has no atomic fields
}
