// Package atomicfield guards the memory-ordering discipline of the
// scheduler's shared structs. Any struct (in the audited packages) that
// contains a sync/atomic field is treated as concurrently accessed:
//
//   - its atomic fields may be touched only through their atomic
//     methods (Load/Store/CompareAndSwap/...), never read or written as
//     plain values, assigned, or address-taken;
//   - its plain fields may be written only from methods of the struct
//     itself. A write anywhere else needs an explicit happens-before
//     justification in the form of a //lcws:presync comment on (or just
//     above) the statement — e.g. scheduler startup code that runs
//     before the worker goroutines exist.
//
// Plain-field reads are not restricted: several (worker id, options)
// are immutable after construction, and flagging every read would bury
// the signal. The race detector and the model checker cover dynamic
// read ordering.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lcws/internal/analysis"
)

// auditedPackages limits the analyzer to the concurrency core. Other
// packages (workloads, plotting, harnesses) use ordinary Go idioms that
// this strict discipline would misfire on.
var auditedPackages = map[string]bool{
	"lcws/internal/deque": true,
	"lcws/internal/core":  true,
}

// Annotation marks a statement as establishing its own happens-before
// edge (typically: it runs before any concurrent goroutine starts).
const Annotation = "//lcws:presync"

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "check for mixed atomic/plain access to fields of shared scheduler structs\n\n" +
		"A struct holding sync/atomic fields is shared between goroutines. Accessing an " +
		"atomic field without its methods, or writing a sibling plain field outside the " +
		"struct's own methods, breaks the ordering argument of the paper's Lemmas. " +
		"Writes with an established happens-before edge carry a " + Annotation + " comment.",
	Run: run,
}

// fieldKey names a field without relying on types.Var identity, which
// differs between a generic type's declaration and its instantiations.
type fieldKey struct {
	pkg, typ, field string
}

func run(pass *analysis.Pass) error {
	if !auditedPackages[normalizePath(pass.Pkg.Path())] {
		return nil
	}
	atomicFields := map[fieldKey]bool{} // key -> field is itself atomic
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		hasAtomic := false
		for i := 0; i < st.NumFields(); i++ {
			if analysis.IsAtomicType(st.Field(i).Type()) {
				hasAtomic = true
				break
			}
		}
		if !hasAtomic {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			atomicFields[fieldKey{pass.Pkg.Path(), name, f.Name()}] = analysis.IsAtomicType(f.Type())
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	analysis.InspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		owner := analysis.NamedOf(s.Recv())
		if owner == nil || owner.Obj().Pkg() == nil {
			return true
		}
		key := fieldKey{owner.Obj().Pkg().Path(), owner.Obj().Name(), sel.Sel.Name}
		isAtomic, audited := atomicFields[key]
		if !audited {
			return true
		}
		if isAtomic {
			checkAtomicUse(pass, sel, key, stack)
		} else {
			checkPlainWrite(pass, sel, key, owner, stack)
		}
		return true
	})
	return nil
}

// checkAtomicUse requires the parent of x.f (f atomic) to be a method
// selection x.f.Load / x.f.Store / ... — both calls and method values
// (e.g. s.finished.Load passed as a predicate) are fine, everything
// else is a plain access.
func checkAtomicUse(pass *analysis.Pass, sel *ast.SelectorExpr, key fieldKey, stack []ast.Node) {
	if len(stack) > 0 {
		if m, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && m.X == sel {
			return
		}
	}
	// unsafe.Offsetof(x.f) queries layout without evaluating the field;
	// the cache-layout regression tests rely on it.
	if analysis.IsOffsetofArg(pass.TypesInfo, stack) {
		return
	}
	pass.Reportf(sel.Pos(), "atomic field %s.%s must be accessed only through its sync/atomic methods", key.typ, key.field)
}

// checkPlainWrite flags writes to plain fields of audited structs made
// outside the struct's own methods and without a presync annotation.
func checkPlainWrite(pass *analysis.Pass, sel *ast.SelectorExpr, key fieldKey, owner *types.Named, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	write := false
	switch parent := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == sel {
				write = true
			}
		}
	case *ast.IncDecStmt:
		write = parent.X == sel
	case *ast.UnaryExpr:
		// Address-taken: the pointer can be written through later.
		write = parent.Op == token.AND && parent.X == sel
	}
	if !write {
		return
	}
	if fd := analysis.EnclosingFuncDecl(stack); fd != nil && fd.Recv != nil && len(fd.Recv.List) > 0 {
		if rt := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type); rt != nil {
			if n := analysis.NamedOf(rt); n != nil && n.Obj() == owner.Obj() {
				return
			}
		}
	}
	if hasPresyncAnnotation(pass, sel.Pos()) {
		return
	}
	pass.Reportf(sel.Pos(), "plain field %s.%s written outside %s's methods; annotate the statement %s if a happens-before edge is established", key.typ, key.field, key.typ, Annotation)
}

// hasPresyncAnnotation reports whether an //lcws:presync comment sits
// on pos's line or the line directly above it.
func hasPresyncAnnotation(pass *analysis.Pass, pos token.Pos) bool {
	p := pass.Fset.Position(pos)
	for _, f := range pass.Files {
		if pass.Fset.Position(f.Pos()).Filename != p.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, Annotation) {
					continue
				}
				cl := pass.Fset.Position(c.Pos()).Line
				if cl == p.Line || cl == p.Line-1 {
					return true
				}
			}
		}
	}
	return false
}

// normalizePath strips cmd/go's test-variant suffix ("pkg [pkg.test]")
// so the audited-package check also applies to test builds under go vet.
func normalizePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
