package atomicfield_test

import (
	"testing"

	"lcws/internal/analysis/analysistest"
	"lcws/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "lcws/internal/core")
}
