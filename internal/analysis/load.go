package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // source directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of a single module from
// source. Imports are resolved in three tiers: an optional overlay
// directory laid out as <Overlay>/<import-path>/*.go (used by analyzer
// tests, mirroring x/tools' analysistest GOPATH convention), the module
// itself, and finally the standard library via go/importer's source
// importer. The loader memoizes packages, so one Loader can serve many
// analyzer runs.
type Loader struct {
	Fset *token.FileSet
	// ModRoot is the directory containing go.mod.
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string
	// Overlay, when non-empty, is checked before the module and the
	// standard library: import path P resolves to <Overlay>/P if that
	// directory exists.
	Overlay string
	// IncludeTests adds in-package _test.go files to loaded packages.
	// External (package foo_test) files are never included.
	IncludeTests bool

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a Loader rooted at the module containing dir
// (searching upward for go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// NewOverlayLoader returns a Loader that resolves every non-stdlib
// import from the overlay directory (laid out as <overlay>/<import-path>).
// It is the loader used by analyzer tests: the overlay substitutes small
// seeded-violation stand-ins for real module packages.
func NewOverlayLoader(overlay string) (*Loader, error) {
	abs, err := filepath.Abs(overlay)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		// A module path that can never match keeps resolution
		// overlay-then-stdlib only.
		ModRoot: abs,
		ModPath: "\x00none",
		Overlay: abs,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Load resolves patterns to packages and type-checks them. Supported
// patterns: "./..." (every package under the module root), and
// directory-ish paths like "./internal/deque" or "internal/deque".
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var paths []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.moduleDirs()
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(d)
			}
		default:
			// A pattern that already names a resolvable import path
			// (e.g. an overlay package in analyzer tests) is used as-is.
			if l.dirFor(pat) != "" {
				add(pat)
				continue
			}
			rel := strings.TrimPrefix(pat, "./")
			rel = filepath.ToSlash(filepath.Clean(rel))
			if rel == "." {
				rel = ""
			}
			if rel == "" {
				add(l.ModPath)
			} else {
				add(l.ModPath + "/" + rel)
			}
		}
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// moduleDirs returns the import paths of every package directory under
// the module root, skipping testdata, vendor and hidden directories.
func (l *Loader) moduleDirs() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.ModRoot, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModPath)
		} else {
			out = append(out, l.ModPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// Import implements types.Importer, resolving overlay and module
// packages from source and delegating the rest to the standard
// library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if l.dirFor(path) != "" {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps an import path to a source directory, or "" when the
// path belongs to neither the overlay nor the module.
func (l *Loader) dirFor(path string) string {
	if l.Overlay != "" {
		dir := filepath.Join(l.Overlay, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir
		}
	}
	if path == l.ModPath {
		return l.ModRoot
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(rest))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir
		}
	}
	return ""
}

// load parses and type-checks the package at import path.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: cannot resolve import %q in module %s", path, l.ModPath)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		if !matchesBuildContext(dir, name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if isGeneratedFile(f) {
			continue
		}
		// Keep only the primary (non _test-suffixed) package; external
		// test packages would need their own unit.
		if pkgName == "" && !strings.HasSuffix(f.Name.Name, "_test") {
			pkgName = f.Name.Name
		}
		if f.Name.Name == pkgName && pkgName != "" {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type errors in %s:\n%s", path, strings.Join(msgs, "\n"))
	}
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// matchesBuildContext reports whether the default build context would
// include dir/name in a build: it evaluates //go:build (and legacy
// +build) constraints and GOOS/GOARCH filename suffixes. A file pair
// like race_test_guard.go (//go:build race) and race_test_guard_off.go
// (//go:build !race) would otherwise both be loaded, redeclaring the
// same symbols; the analyzers run without the race build tag, so the
// off variant wins, matching a plain `go build`.
func matchesBuildContext(dir, name string) bool {
	ctxt := build.Default
	ok, err := ctxt.MatchFile(dir, name)
	if err != nil {
		// Unreadable files surface as parse errors later; don't mask
		// the real error here.
		return true
	}
	return ok
}

// generatedRx matches the conventional generated-file marker
// (https://go.dev/s/generatedcode): it must be a line of its own,
// before the package clause.
var generatedRx = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

// isGeneratedFile reports whether f carries the standard generated-code
// marker before its package clause. Generated files are excluded from
// analysis: their access patterns are the generator's responsibility,
// and annotation findings in them are not actionable by hand.
func isGeneratedFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if generatedRx.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// Run applies analyzers to the packages and returns all diagnostics in
// file/position order.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
