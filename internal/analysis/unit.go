package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// vetConfig mirrors the JSON object cmd/go writes to <objdir>/vet.cfg
// and passes to the vet tool as its sole positional argument. Field
// names must match cmd/go/internal/work's vetConfig exactly.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool

	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	GoVersion string

	SucceedOnTypecheckFailure bool
}

// RunUnit executes analyzers against one build unit described by the
// vet.cfg file at cfgPath, printing diagnostics to w in the standard
// file:line:col format. It returns the process exit code: 0 for clean,
// 2 when diagnostics were reported, 1 on driver errors — matching the
// x/tools unitchecker conventions that cmd/go expects.
func RunUnit(cfgPath string, analyzers []*Analyzer, w io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "lcwsvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "lcwsvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go reads the vetx facts file after a successful run; we keep
	// no cross-package facts, so an empty file satisfies it.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintf(w, "lcwsvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		// ImportMap sends source-level import paths through vendoring /
		// test-variant canonicalization before the export-data lookup.
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	info := newInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect via the returned error below
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(w, "lcwsvet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &Package{Path: cfg.ImportPath, Dir: cfg.Dir, Files: files, Types: tpkg, Info: info}
	diags, err := Run(fset, []*Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintf(w, "lcwsvet: %v\n", err)
		return 1
	}
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return 2
}
