// Benchmarks regenerating the paper's tables and figures (one bench per
// table/figure; see DESIGN.md §4 for the index) plus scheduler
// micro-benchmarks and ablations of the design choices DESIGN.md §5
// calls out. The figure benches use reduced sweep sizes so that
// `go test -bench=. -benchmem` finishes in minutes; cmd/lcwsbench runs
// the full-size sweeps.
package lcws_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"lcws"
	"lcws/fig"
	"lcws/internal/perf"
	"lcws/pbbs"
	"lcws/sim"
)

// ---- shared sweeps (built once; the *Sweep benches measure their cost) --

var (
	counterOnce  sync.Once
	counterSweep *fig.CounterSweep

	simOnce   sync.Once
	simSweeps []*fig.SimSweep
)

const benchScale = pbbs.Scale(0.02)

var benchWorkers = []int{2, 4}

func getCounterSweep() *fig.CounterSweep {
	counterOnce.Do(func() {
		counterSweep = fig.RunCounterSweep(benchScale, benchWorkers,
			[]lcws.Policy{lcws.WS, lcws.USLCWS, lcws.SignalLCWS}, 1)
	})
	return counterSweep
}

func getSimSweeps() []*fig.SimSweep {
	simOnce.Do(func() {
		for _, m := range sim.Machines {
			simSweeps = append(simSweeps, fig.RunSimSweep(m, []int{1, 2, m.Cores / 2, m.Cores}, 17))
		}
	})
	return simSweeps
}

// ---- one benchmark per table and figure --------------------------------

// BenchmarkTable1Machines regenerates Table 1.
func BenchmarkTable1Machines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		fig.Table1(&buf)
		if buf.Len() == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkCounterSweep measures the real-execution sweep feeding
// Figures 3 and 8 (all pbbs instances × policies × worker counts).
func BenchmarkCounterSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig.RunCounterSweep(benchScale, benchWorkers,
			[]lcws.Policy{lcws.WS, lcws.USLCWS, lcws.SignalLCWS}, uint64(i))
	}
}

// BenchmarkFig3Profile regenerates Figure 3 from the counter sweep.
func BenchmarkFig3Profile(b *testing.B) {
	cs := getCounterSweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fig.Figure3(cs)
		if len(f.Panels) != 4 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig8Profile regenerates Figure 8 from the counter sweep.
func BenchmarkFig8Profile(b *testing.B) {
	cs := getCounterSweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fig.Figure8(cs)
		if len(f.Panels) != 8 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkSimSweep measures one machine's simulator sweep (all workload
// models × 5 policies × worker counts) feeding Figures 4–7.
func BenchmarkSimSweep(b *testing.B) {
	m := sim.Machines[0]
	for i := 0; i < b.N; i++ {
		fig.RunSimSweep(m, []int{1, 2, m.Cores}, uint64(i))
	}
}

// BenchmarkFig4Speedup regenerates Figure 4.
func BenchmarkFig4Speedup(b *testing.B) {
	sw := getSimSweeps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := fig.Figure4(sw); len(f.Panels) != 3 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig5AvgSpeedup regenerates Figure 5.
func BenchmarkFig5AvgSpeedup(b *testing.B) {
	sw := getSimSweeps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := fig.Figure5(sw); len(f.Panels) != 3 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig6WinRate regenerates Figure 6.
func BenchmarkFig6WinRate(b *testing.B) {
	sw := getSimSweeps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := fig.Figure6(sw); len(f.Panels) != 3 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig7Speedup regenerates Figure 7.
func BenchmarkFig7Speedup(b *testing.B) {
	sw := getSimSweeps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := fig.Figure7(sw); len(f.Panels) != 3 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkStats51 regenerates the §5.1 statistics.
func BenchmarkStats51(b *testing.B) {
	sw := getSimSweeps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		fig.Stats51(&buf, sw)
	}
}

// BenchmarkStats52 regenerates the §5.2 statistics.
func BenchmarkStats52(b *testing.B) {
	sw := getSimSweeps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		fig.Stats52(&buf, sw)
	}
}

// BenchmarkStats54 regenerates the §5.4 statistics.
func BenchmarkStats54(b *testing.B) {
	sw := getSimSweeps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		fig.Stats54(&buf, sw)
	}
}

// ---- scheduler micro-benchmarks ----------------------------------------

func fibBench(ctx *lcws.Ctx, n int) int {
	if n < 2 {
		return n
	}
	var a, c int
	lcws.Fork2(ctx,
		func(ctx *lcws.Ctx) { a = fibBench(ctx, n-1) },
		func(ctx *lcws.Ctx) { c = fibBench(ctx, n-2) },
	)
	return a + c
}

// BenchmarkForkJoin measures raw fork-join throughput (fib 20) per
// policy: the per-fork scheduler overhead is exactly where LCWS removes
// fences.
func BenchmarkForkJoin(b *testing.B) {
	for _, pol := range lcws.Policies {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			s := lcws.New(lcws.WithWorkers(1), lcws.WithPolicy(pol))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var got int
				s.Run(func(ctx *lcws.Ctx) { got = fibBench(ctx, 20) })
				if got != 6765 {
					b.Fatal("wrong fib")
				}
			}
		})
	}
}

// BenchmarkParFor measures data-parallel loop overhead per policy.
func BenchmarkParFor(b *testing.B) {
	for _, pol := range lcws.Policies {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			s := lcws.New(lcws.WithWorkers(2), lcws.WithPolicy(pol))
			data := make([]int, 100_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(func(ctx *lcws.Ctx) {
					lcws.ParFor(ctx, 0, len(data), 512, func(ctx *lcws.Ctx, j int) {
						data[j] = j * 3
					})
				})
			}
		})
	}
}

func benchNoopBody(*lcws.Ctx, int) {}

// BenchmarkForkOverheadSpawnTree is the fork-overhead microbenchmark the
// allocation/benchmark regression harness gates on (internal/perf): a
// single-worker spawn tree of empty leaves, so ns/op is pure fork-path
// cost. The ns/fork metric divides by the actual fork count; allocs/op
// must stay 0 once the freelists are warm (the CI bench-smoke job runs
// this with -benchmem).
func BenchmarkForkOverheadSpawnTree(b *testing.B) {
	for _, pol := range lcws.Policies {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			s := lcws.New(lcws.WithWorkers(1), lcws.WithPolicy(pol))
			root := func(ctx *lcws.Ctx) { lcws.ParFor(ctx, 0, perf.SpawnTreeN, 1, benchNoopBody) }
			s.Run(root) // warm the freelist before the timed region
			s.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(root)
			}
			b.StopTimer()
			st := s.Stats()
			if st.TasksPushed > 0 {
				forks := float64(st.TasksPushed)
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/forks, "ns/fork")
				b.ReportMetric(float64(st.Fences)/forks, "fences/fork")
			}
		})
	}
}

// BenchmarkForkOverheadPForSum is the companion fork-overhead bench with
// a real (memory-reading) body at coarse grain: per-split overhead must
// stay noise next to the body, and splits must not allocate.
func BenchmarkForkOverheadPForSum(b *testing.B) {
	data := make([]int64, perf.PForSumN)
	for i := range data {
		data[i] = int64(i)
	}
	for _, pol := range lcws.Policies {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			s := lcws.New(lcws.WithWorkers(1), lcws.WithPolicy(pol))
			var acc int64
			body := func(_ *lcws.Ctx, i int) { acc += data[i] }
			root := func(ctx *lcws.Ctx) { lcws.ParFor(ctx, 0, perf.PForSumN, perf.PForSumGrain, body) }
			s.Run(root)
			s.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(root)
			}
			b.StopTimer()
			st := s.Stats()
			if st.TasksPushed > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(st.TasksPushed), "ns/fork")
			}
		})
	}
}

// ---- ablation benches (DESIGN.md §5 starred choices) --------------------

// BenchmarkAblationExposureMode compares the three exposure policies in
// the simulator at the core count on the AMD32 profile: how much work is
// made public per notification.
func BenchmarkAblationExposureMode(b *testing.B) {
	m, _ := sim.MachineByName("AMD32")
	w := sim.Workloads()[0]
	for _, pol := range []lcws.Policy{lcws.SignalLCWS, lcws.ConsLCWS, lcws.HalfLCWS} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := sim.Simulate(w.Phases, pol, m.Cores, m, 7)
				b.ReportMetric(r.Time, "virt-cycles")
				b.ReportMetric(float64(r.Exposures), "exposures")
			}
		})
	}
}

// BenchmarkAblationSignalLatency sweeps the emulated signal-delivery
// latency (the role the checkpoint interval plays in the real runtime):
// task-boundary exposure (USLCWS) is the limit of infinite latency.
func BenchmarkAblationSignalLatency(b *testing.B) {
	base, _ := sim.MachineByName("AMD32")
	w := sim.Workloads()[0]
	for _, lat := range []float64{200, 2200, 22000} {
		lat := lat
		b.Run(fmtLatency(lat), func(b *testing.B) {
			m := base
			m.SignalCost = lat
			for i := 0; i < b.N; i++ {
				r := sim.Simulate(w.Phases, lcws.SignalLCWS, m.Cores, m, 7)
				b.ReportMetric(r.Time, "virt-cycles")
			}
		})
	}
}

func fmtLatency(l float64) string {
	switch {
	case l < 1000:
		return "latency-fast"
	case l < 10000:
		return "latency-default"
	default:
		return "latency-slow"
	}
}

// BenchmarkAblationRaceFixPop compares the original pop_bottom (used by
// Cons) against the §4 race-fixed variant (used by Signal/Half) on the
// real scheduler: the paper argues the fix costs only an extra decrement
// on the empty path.
func BenchmarkAblationRaceFixPop(b *testing.B) {
	for _, pol := range []lcws.Policy{lcws.ConsLCWS, lcws.SignalLCWS} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			s := lcws.New(lcws.WithWorkers(1), lcws.WithPolicy(pol))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(func(ctx *lcws.Ctx) { fibBench(ctx, 18) })
			}
		})
	}
}

// BenchmarkAblationPollInterval sweeps the real scheduler's checkpoint
// interval (the emulated signal-delivery latency, Options.PollEvery) on
// an oversubscribed pool: the counters show exposure requests being
// served promptly at small intervals and starved at huge ones.
func BenchmarkAblationPollInterval(b *testing.B) {
	for _, every := range []int{1, 64, 1 << 16} {
		every := every
		b.Run(fmt.Sprintf("poll-%d", every), func(b *testing.B) {
			s := lcws.New(lcws.WithWorkers(4), lcws.WithPolicy(lcws.SignalLCWS),
				lcws.WithPollEvery(every), lcws.WithYieldEvery(2))
			data := make([]int, 40_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(func(ctx *lcws.Ctx) {
					lcws.ParFor(ctx, 0, len(data), 256, func(ctx *lcws.Ctx, j int) {
						data[j] = j
						ctx.Poll()
					})
				})
			}
			st := s.Stats()
			b.ReportMetric(float64(st.SignalsHandled), "signals-handled")
		})
	}
}

// BenchmarkPollOverhead measures the checkpoint fast path that kernels
// pay per loop iteration under the signal emulation.
func BenchmarkPollOverhead(b *testing.B) {
	s := lcws.New(lcws.WithWorkers(1), lcws.WithPolicy(lcws.SignalLCWS))
	s.Run(func(ctx *lcws.Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Poll()
		}
	})
}
