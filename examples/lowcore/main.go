// lowcore demonstrates the paper's motivating multiprogrammed scenario
// (§1.1): a runtime system that has been allotted only a fraction of the
// machine's cores. When the worker count is low, most tasks are executed
// by the processor that created them, so the WS baseline's per-operation
// fences are pure overhead — which the LCWS schedulers eliminate. The
// program runs the same sort workload at a low and a high worker count
// and prints how many synchronization operations each scheduler executed
// per task.
//
//	go run ./examples/lowcore -n 300000
package main

import (
	"flag"
	"fmt"

	"lcws"
	"lcws/parlay"
	"lcws/workload"
)

func run(pol lcws.Policy, workers int, keys []uint64) lcws.Stats {
	s := lcws.New(lcws.WithWorkers(workers), lcws.WithPolicy(pol), lcws.WithSeed(3))
	data := make([]uint64, len(keys))
	s.Run(func(ctx *lcws.Ctx) {
		copy(data, keys)
		parlay.IntegerSort(ctx, data, 27)
	})
	return s.Stats()
}

func main() {
	n := flag.Int("n", 200_000, "elements to sort")
	low := flag.Int("low", 2, "constrained worker count (the multiprogrammed case)")
	high := flag.Int("high", 8, "full-machine worker count")
	flag.Parse()

	keys := workload.RandomSeq(1, *n, 1<<27)

	for _, workers := range []int{*low, *high} {
		fmt.Printf("=== %d workers ===\n", workers)
		fmt.Printf("%-8s %12s %12s %14s %10s\n", "policy", "fences", "cas", "fences/task", "steals")
		for _, pol := range lcws.Policies {
			st := run(pol, workers, keys)
			perTask := 0.0
			if st.TasksExecuted > 0 {
				perTask = float64(st.Fences) / float64(st.TasksExecuted)
			}
			fmt.Printf("%-8v %12d %12d %14.3f %10d\n",
				pol, st.Fences, st.CAS, perTask, st.StealSuccesses)
		}
		fmt.Println()
	}
	fmt.Println("With few workers the LCWS schedulers run essentially fence-free: every")
	fmt.Println("deque operation stays in the private part. The WS baseline pays one fence")
	fmt.Println("per push and one per pop no matter how little stealing happens — the")
	fmt.Println("overhead the paper's multiprogrammed-environment motivation targets.")
}
