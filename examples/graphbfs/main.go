// graphbfs runs parallel breadth-first search over an RMAT power-law
// graph under every scheduler policy and compares the synchronization
// profiles — a one-program rendition of the paper's Figure 3/8 story on
// a single benchmark.
//
//	go run ./examples/graphbfs -logn 14 -edges 200000 -workers 4
package main

import (
	"flag"
	"fmt"
	"time"

	"lcws"
	"lcws/pbbs"
	"lcws/workload"
)

func main() {
	logN := flag.Int("logn", 13, "log2 of the vertex count")
	edges := flag.Int("edges", 120_000, "number of RMAT edges")
	workers := flag.Int("workers", 4, "number of workers")
	flag.Parse()

	fmt.Printf("building rMatGraph(2^%d vertices, %d edges)...\n", *logN, *edges)
	g := workload.RMatGraph(7, *logN, *edges)
	fmt.Printf("graph: %d vertices, %d directed adjacency entries\n\n", g.NumVertices(), g.NumEdges())

	fmt.Printf("%-8s %10s %12s %10s %12s %10s %10s\n",
		"policy", "time", "reached", "fences", "cas", "steals", "exposures")
	var reference int
	for _, pol := range lcws.Policies {
		s := lcws.New(lcws.WithWorkers(*workers), lcws.WithPolicy(pol), lcws.WithSeed(11))
		var parents []int32
		start := time.Now()
		s.Run(func(ctx *lcws.Ctx) {
			parents = pbbs.BFS(ctx, g, 0)
		})
		elapsed := time.Since(start)
		reached := 0
		for _, p := range parents {
			if p >= 0 {
				reached++
			}
		}
		if reference == 0 {
			reference = reached
		} else if reached != reference {
			fmt.Printf("!! policy %v reached %d vertices, expected %d\n", pol, reached, reference)
		}
		st := s.Stats()
		fmt.Printf("%-8v %10s %12d %10d %12d %10d %10d\n",
			pol, elapsed.Round(time.Microsecond), reached,
			st.Fences, st.CAS, st.StealSuccesses, st.Exposures)
	}
	fmt.Println("\nAll policies compute the same BFS reachability; the LCWS variants do it")
	fmt.Println("with a fraction of the memory fences (compare the fences column with WS).")
}
