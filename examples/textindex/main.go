// textindex builds a word-count table and an inverted index over a
// synthetic document collection using the parallel text kernels, then
// answers a few lookups — the invertedIndex/wordCounts benchmarks as an
// application.
//
//	go run ./examples/textindex -docs 500 -policy Half
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"lcws"
	"lcws/pbbs"
	"lcws/workload"
)

func main() {
	nDocs := flag.Int("docs", 400, "number of documents")
	wordsPerDoc := flag.Int("words", 80, "approximate words per document")
	workers := flag.Int("workers", 4, "number of workers")
	policy := flag.String("policy", "Signal", "scheduler policy")
	flag.Parse()

	pol, err := lcws.ParsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	docs := workload.Documents(99, *nDocs, *wordsPerDoc)

	s := lcws.New(lcws.WithWorkers(*workers), lcws.WithPolicy(pol))
	var counts []pbbs.WordCount
	var index []pbbs.Posting
	start := time.Now()
	s.Run(func(ctx *lcws.Ctx) {
		all := ""
		for _, d := range docs {
			all += d + " "
		}
		counts = pbbs.WordCounts(ctx, all)
		index = pbbs.BuildInvertedIndex(ctx, docs)
	})
	elapsed := time.Since(start)

	fmt.Printf("indexed %d documents in %s under %v (%d workers)\n",
		len(docs), elapsed.Round(time.Millisecond), pol, *workers)
	fmt.Printf("distinct words: %d; postings: %d\n\n", len(counts), len(index))

	// Top five most frequent words.
	top := append([]pbbs.WordCount(nil), counts...)
	sort.Slice(top, func(i, j int) bool { return top[i].Count > top[j].Count })
	fmt.Println("most frequent words:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  %-12s %6d occurrences\n", top[i].Word, top[i].Count)
	}

	// Look their posting lists up in the index.
	postings := map[string][]int32{}
	for _, p := range index {
		postings[p.Word] = p.Docs
	}
	fmt.Println("\nposting lists:")
	for i := 0; i < 3 && i < len(top); i++ {
		w := top[i].Word
		docsWith := postings[w]
		show := docsWith
		if len(show) > 8 {
			show = show[:8]
		}
		fmt.Printf("  %-12s in %4d documents, first: %v\n", w, len(docsWith), show)
	}

	st := s.Stats()
	fmt.Printf("\nscheduler counters: fences=%d cas=%d steals=%d exposures=%d\n",
		st.Fences, st.CAS, st.StealSuccesses, st.Exposures)
}
