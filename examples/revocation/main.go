// revocation demonstrates the multiprogrammed-environment extension: a
// simulated resource manager revokes cores mid-run, and the demo shows
// how much more the split-deque (LCWS) schedulers lose than WS because a
// revoked worker's private work is stranded until its core returns.
//
//	go run ./examples/revocation -machine AMD32
package main

import (
	"flag"
	"fmt"
	"log"

	"lcws"
	"lcws/sim"
)

func main() {
	machine := flag.String("machine", "AMD32", "Table 1 machine profile: Intel12, AMD32 or Intel16")
	flag.Parse()

	m, ok := sim.MachineByName(*machine)
	if !ok {
		log.Fatalf("unknown machine %q", *machine)
	}
	workloads := sim.Workloads()
	policies := []lcws.Policy{lcws.WS, lcws.USLCWS, lcws.SignalLCWS, lcws.LaceWS}

	fmt.Printf("core revocation on %s: mid-run (30%%–60%% of the makespan) only\n", m.Name)
	fmt.Printf("a fraction of the %d cores may run; table shows completion time\n", m.Cores)
	fmt.Printf("normalized to each policy's own full-machine run (avg over %d workloads)\n\n", len(workloads))

	fmt.Printf("%-24s", "cores during revocation")
	for _, pol := range policies {
		fmt.Printf("%10s", pol)
	}
	fmt.Println()
	for _, avail := range []int{m.Cores / 8, m.Cores / 4, m.Cores / 2} {
		if avail < 1 {
			avail = 1
		}
		fmt.Printf("%-24d", avail)
		for _, pol := range policies {
			total := 0.0
			for _, w := range workloads {
				full := sim.Simulate(w.Phases, pol, m.Cores, m, 42)
				tr := sim.Trace{
					{Until: full.Time * 0.3, Procs: m.Cores},
					{Until: full.Time * 0.6, Procs: avail},
				}
				revoked := sim.SimulateTrace(w.Phases, pol, m.Cores, m, 42, tr)
				total += revoked.Time / full.Time
			}
			fmt.Printf("%10.3f", total/float64(len(workloads)))
		}
		fmt.Println()
	}
	fmt.Println("\nWS keeps every stranded task stealable; the LCWS schedulers strand the")
	fmt.Println("private parts of revoked workers' deques until the cores return, which")
	fmt.Println("is the extra slowdown visible in the LCWS columns.")
}
