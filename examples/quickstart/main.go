// Quickstart: fork-join and parallel-for on the lcws public API, with a
// scheduler policy switch. Run it with different policies to compare the
// synchronization-operation counters:
//
//	go run ./examples/quickstart -policy WS
//	go run ./examples/quickstart -policy Signal -workers 4
package main

import (
	"flag"
	"fmt"
	"log"

	"lcws"
	"lcws/parlay"
)

// fib computes Fibonacci numbers the silly, fork-heavy way — the
// classic scheduler stress test: every call below the cutoff forks two
// children that a thief may steal.
func fib(ctx *lcws.Ctx, n int) int {
	if n < 2 {
		return n
	}
	var a, b int
	lcws.Fork2(ctx,
		func(ctx *lcws.Ctx) { a = fib(ctx, n-1) },
		func(ctx *lcws.Ctx) { b = fib(ctx, n-2) },
	)
	return a + b
}

func main() {
	workers := flag.Int("workers", 4, "number of workers")
	policy := flag.String("policy", "Signal", "WS, User, Signal, Cons or Half")
	flag.Parse()

	pol, err := lcws.ParsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	s := lcws.New(lcws.WithWorkers(*workers), lcws.WithPolicy(pol))

	var f25 int
	var sum uint64
	s.Run(func(ctx *lcws.Ctx) {
		// 1. Plain fork-join recursion.
		f25 = fib(ctx, 25)

		// 2. Data parallelism via the parlay toolkit: sum of squares.
		xs := parlay.Tabulate(ctx, 1_000_000, func(i int) uint64 {
			return uint64(i) * uint64(i)
		})
		sum = parlay.Sum(ctx, xs)
	})

	st := s.Stats()
	fmt.Printf("policy=%v workers=%d\n", pol, s.Workers())
	fmt.Printf("fib(25) = %d\n", f25)
	fmt.Printf("sum of first 1e6 squares = %d\n", sum)
	fmt.Printf("scheduler counters: fences=%d cas=%d steals=%d/%d exposures=%d signals=%d tasks=%d\n",
		st.Fences, st.CAS, st.StealSuccesses, st.StealAttempts,
		st.Exposures, st.SignalsSent, st.TasksExecuted)
	fmt.Println("note: under the LCWS policies the fence count stays near zero —")
	fmt.Println("that is the paper's headline property (synchronization-free local deque access).")
}
