// Server: the persistent executor as the compute pool behind a stdlib
// net/http server. One resident scheduler is created at startup; every
// request handler submits a fork-join job to it from its own goroutine
// (Submit is safe from any goroutine), so concurrent requests share the
// worker pool instead of spawning goroutines per request. Handlers pass
// the request context via WithJobCtx: a client that disconnects cancels
// its job at the next task boundary or Poll checkpoint, and the pool
// stays healthy for everyone else.
//
// The pool is multi-tenant: a ?class=high|normal|low query parameter
// maps each request onto a QoS class, so interactive requests keep
// bounded pickup latency while batch requests soak the leftover
// capacity. The low class is capacity-bounded with fail-fast
// admission — when the batch queue is full the handler sheds load with
// 429 instead of letting the backlog grow without bound.
//
//	go run ./examples/server                 # serve on :8080
//	curl 'localhost:8080/fib?n=30'
//	curl 'localhost:8080/fib?n=30&class=low'
//	curl 'localhost:8080/sum?n=50000000&class=high'
//	curl 'localhost:8080/stats'
//
//	go run ./examples/server -demo           # self-drive a few requests and exit
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"time"

	"lcws"
	"lcws/parlay"
)

// fib is the classic fork-heavy scheduler stress test.
func fib(ctx *lcws.Ctx, n int) int {
	if n < 2 {
		return n
	}
	var a, b int
	lcws.Fork2(ctx,
		func(ctx *lcws.Ctx) { a = fib(ctx, n-1) },
		func(ctx *lcws.Ctx) { b = fib(ctx, n-2) },
	)
	return a + b
}

// server wraps the resident pool shared by all handlers.
type server struct {
	sched *lcws.Scheduler
}

// submitOpts maps a request onto its submission options: the request
// context for cancellation, the ?class= QoS class (default normal),
// and fail-fast admission so a full class queue sheds load instead of
// stalling the handler goroutine.
func submitOpts(r *http.Request) ([]lcws.SubmitOpt, error) {
	opts := []lcws.SubmitOpt{lcws.WithJobCtx(r.Context()), lcws.WithAdmission(lcws.AdmitFail)}
	if v := r.URL.Query().Get("class"); v != "" {
		c, ok := lcws.ParseJobClass(v)
		if !ok {
			return nil, fmt.Errorf("unknown class %q (want high, normal or low)", v)
		}
		opts = append(opts, lcws.WithJobPriority(c))
	}
	return opts, nil
}

// fail maps a job error onto an HTTP status: 429 for shed load, 503
// for everything else (cancellation, panic isolation, shutdown).
func fail(w http.ResponseWriter, err error) {
	if errors.Is(err, lcws.ErrQueueFull) {
		http.Error(w, "batch queue full, retry later", http.StatusTooManyRequests)
		return
	}
	http.Error(w, err.Error(), http.StatusServiceUnavailable)
}

// handleFib computes fib(n) as one job. The request context rides along:
// if the client goes away mid-computation the job unwinds and the
// handler reports the cancellation instead of finishing dead work.
func (sv *server) handleFib(w http.ResponseWriter, r *http.Request) {
	n, err := intParam(r, "n", 30)
	if err != nil || n < 0 || n > 40 {
		http.Error(w, "n must be an integer in [0,40]", http.StatusBadRequest)
		return
	}
	opts, err := submitOpts(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var result int
	start := time.Now()
	j := sv.sched.Submit(func(ctx *lcws.Ctx) {
		result = fib(ctx, n)
	}, opts...)
	if err := j.Wait(); err != nil {
		fail(w, err)
		return
	}
	st := j.Stats()
	fmt.Fprintf(w, "fib(%d) = %d  (class %v, %d tasks, %v, wall %v)\n",
		n, result, j.Class(), st.Tasks, st.Duration.Round(time.Microsecond),
		time.Since(start).Round(time.Microsecond))
}

// handleSum sums the first n squares with the parlay toolkit — a
// data-parallel job shape, to show jobs need not be irregular trees.
func (sv *server) handleSum(w http.ResponseWriter, r *http.Request) {
	n, err := intParam(r, "n", 10_000_000)
	if err != nil || n < 1 || n > 1_000_000_000 {
		http.Error(w, "n must be an integer in [1,1e9]", http.StatusBadRequest)
		return
	}
	opts, err := submitOpts(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var sum uint64
	j := sv.sched.Submit(func(ctx *lcws.Ctx) {
		xs := parlay.Tabulate(ctx, n, func(i int) uint64 {
			return uint64(i) * uint64(i)
		})
		sum = parlay.Sum(ctx, xs)
	}, opts...)
	if err := j.Wait(); err != nil {
		fail(w, err)
		return
	}
	st := j.Stats()
	fmt.Fprintf(w, "sum of first %d squares = %d  (class %v, %d tasks, %v)\n",
		n, sum, j.Class(), st.Tasks, st.Duration.Round(time.Microsecond))
}

// handleStats reports the pool's cumulative scheduler statistics,
// including the per-class QoS accounting.
func (sv *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := sv.sched.Stats()
	fmt.Fprintf(w, "workers            %d\n", sv.sched.Workers())
	fmt.Fprintf(w, "jobs submitted     %d\n", st.JobsSubmitted)
	fmt.Fprintf(w, "jobs completed     %d\n", st.JobsCompleted)
	fmt.Fprintf(w, "jobs failed        %d\n", st.JobsFailed)
	fmt.Fprintf(w, "tasks executed     %d\n", st.TasksExecuted)
	fmt.Fprintf(w, "steal successes    %d\n", st.StealSuccesses)
	fmt.Fprintf(w, "enqueued high      %d\n", st.JobsEnqueuedHigh)
	fmt.Fprintf(w, "enqueued normal    %d\n", st.JobsEnqueuedNormal)
	fmt.Fprintf(w, "enqueued low       %d\n", st.JobsEnqueuedLow)
	fmt.Fprintf(w, "admission rejects  %d\n", st.AdmissionRejects)
	fmt.Fprintf(w, "job yields         %d\n", st.JobYields)
	for _, c := range []lcws.JobClass{lcws.High, lcws.Normal, lcws.Low} {
		h := st.InjectorWaitHigh
		switch c {
		case lcws.Normal:
			h = st.InjectorWaitNormal
		case lcws.Low:
			h = st.InjectorWaitLow
		}
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "pickup wait %-6v mean %v  p99 %v\n", c,
			time.Duration(h.Mean()).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond))
	}
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "resident pool size")
	policy := flag.String("policy", "Signal", "WS, User, Signal, Cons, Half or Lace")
	lowCap := flag.Int("lowcap", 64, "low-class queue capacity (0 = unbounded)")
	demo := flag.Bool("demo", false, "serve on a random port, issue a few requests against ourselves, and exit")
	flag.Parse()

	pol, err := lcws.ParsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}

	// One pool for the process lifetime. Start is optional (the first
	// Submit would spawn the workers lazily); doing it here moves the
	// spawn cost out of the first request. Batch (low-class) traffic is
	// admission-bounded so a flood of background requests turns into
	// 429s, not an unbounded queue.
	sched := lcws.New(
		lcws.WithWorkers(*workers),
		lcws.WithPolicy(pol),
		lcws.WithClassCapacity(lcws.Low, *lowCap),
	)
	sched.Start()
	defer sched.Close()

	sv := &server{sched: sched}
	mux := http.NewServeMux()
	mux.HandleFunc("/fib", sv.handleFib)
	mux.HandleFunc("/sum", sv.handleSum)
	mux.HandleFunc("/stats", sv.handleStats)

	if *demo {
		runDemo(mux)
		return
	}

	log.Printf("serving on %s (policy %v, %d workers)", *addr, pol, sched.Workers())
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// runDemo binds an ephemeral port and plays client against our own
// handlers, so the example is runnable (and CI-smokeable) without an
// external curl.
func runDemo(mux *http.ServeMux) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()

	base := "http://" + ln.Addr().String()
	for _, path := range []string{
		"/fib?n=25", "/fib?n=28&class=high", "/sum?n=5000000&class=low", "/stats",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("GET %-24s -> %s", path, body)
	}
}
