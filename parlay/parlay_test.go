package parlay

import (
	"sort"
	"testing"
	"testing/quick"

	"lcws"
	"lcws/internal/rng"
)

// run executes f on a fresh 4-worker scheduler of the given policy.
func run(p lcws.Policy, f func(ctx *lcws.Ctx)) {
	s := lcws.New(lcws.WithWorkers(4), lcws.WithPolicy(p), lcws.WithSeed(7))
	s.Run(f)
}

// runAll executes f once per scheduling policy: primitives must behave
// identically under every scheduler.
func runAll(t *testing.T, f func(ctx *lcws.Ctx)) {
	t.Helper()
	for _, p := range lcws.Policies {
		run(p, f)
	}
}

func randomInts(seed uint64, n, bound int) []int {
	g := rng.New(seed)
	out := make([]int, n)
	for i := range out {
		out[i] = g.Intn(bound)
	}
	return out
}

func TestIotaAndTabulate(t *testing.T) {
	runAll(t, func(ctx *lcws.Ctx) {
		xs := Iota(ctx, 1000)
		for i, v := range xs {
			if v != i {
				t.Fatalf("Iota[%d] = %d", i, v)
			}
		}
		sq := Tabulate(ctx, 100, func(i int) int { return i * i })
		if sq[9] != 81 || len(sq) != 100 {
			t.Fatalf("Tabulate squares wrong: %v", sq[:10])
		}
		if Tabulate(ctx, 0, func(i int) int { return i }) != nil {
			t.Fatal("Tabulate(0) should be nil")
		}
	})
}

func TestMap(t *testing.T) {
	runAll(t, func(ctx *lcws.Ctx) {
		in := Iota(ctx, 500)
		out := Map(ctx, in, func(x int) float64 { return float64(2 * x) })
		for i, v := range out {
			if v != float64(2*i) {
				t.Fatalf("Map[%d] = %v", i, v)
			}
		}
	})
}

func TestReduceAndSum(t *testing.T) {
	runAll(t, func(ctx *lcws.Ctx) {
		xs := Iota(ctx, 100000)
		if got := Sum(ctx, xs); got != 100000*99999/2 {
			t.Fatalf("Sum = %d", got)
		}
		prod := Reduce(ctx, []int{1, 2, 3, 4, 5}, 1, func(a, b int) int { return a * b })
		if prod != 120 {
			t.Fatalf("product Reduce = %d", prod)
		}
		if got := Sum(ctx, []int(nil)); got != 0 {
			t.Fatalf("Sum(nil) = %d", got)
		}
	})
}

func TestMinMax(t *testing.T) {
	runAll(t, func(ctx *lcws.Ctx) {
		xs := randomInts(3, 10000, 1<<30)
		gotMax, ok := Max(ctx, xs)
		if !ok {
			t.Fatal("Max not ok")
		}
		gotMin, _ := Min(ctx, xs)
		wantMax, wantMin := xs[0], xs[0]
		for _, v := range xs {
			if v > wantMax {
				wantMax = v
			}
			if v < wantMin {
				wantMin = v
			}
		}
		if gotMax != wantMax || gotMin != wantMin {
			t.Fatalf("Max/Min = %d/%d, want %d/%d", gotMax, gotMin, wantMax, wantMin)
		}
		if _, ok := Max(ctx, []int{}); ok {
			t.Fatal("Max of empty should not be ok")
		}
	})
}

func TestScanExclusive(t *testing.T) {
	runAll(t, func(ctx *lcws.Ctx) {
		n := 50000
		xs := make([]int, n)
		for i := range xs {
			xs[i] = 1
		}
		out, total := Scan(ctx, xs, 0, func(a, b int) int { return a + b })
		if total != n {
			t.Fatalf("Scan total = %d, want %d", total, n)
		}
		for i, v := range out {
			if v != i {
				t.Fatalf("Scan[%d] = %d, want %d", i, v, i)
			}
		}
	})
}

func TestScanMatchesSequential(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n := 1 + g.Intn(9000)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = g.Intn(100) - 50
		}
		var got []int
		var total int
		run(lcws.SignalLCWS, func(ctx *lcws.Ctx) {
			got, total = Scan(ctx, xs, 0, func(a, b int) int { return a + b })
		})
		acc := 0
		for i := range xs {
			if got[i] != acc {
				return false
			}
			acc += xs[i]
		}
		return total == acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestScanInclusive(t *testing.T) {
	run(lcws.WS, func(ctx *lcws.Ctx) {
		xs := []int{1, 2, 3, 4}
		out := ScanInclusive(ctx, xs, 0, func(a, b int) int { return a + b })
		want := []int{1, 3, 6, 10}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("ScanInclusive = %v, want %v", out, want)
			}
		}
	})
}

func TestScanIntoAliased(t *testing.T) {
	run(lcws.HalfLCWS, func(ctx *lcws.Ctx) {
		n := 30000
		xs := make([]int, n)
		for i := range xs {
			xs[i] = 2
		}
		total := ScanInto(ctx, xs, xs, 0, func(a, b int) int { return a + b })
		if total != 2*n {
			t.Fatalf("aliased ScanInto total = %d, want %d", total, 2*n)
		}
		for i := 0; i < n; i += 997 {
			if xs[i] != 2*i {
				t.Fatalf("aliased ScanInto[%d] = %d, want %d", i, xs[i], 2*i)
			}
		}
	})
}

func TestFilterPackCount(t *testing.T) {
	runAll(t, func(ctx *lcws.Ctx) {
		xs := Iota(ctx, 10007)
		even := func(x int) bool { return x%2 == 0 }
		got := Filter(ctx, xs, even)
		if len(got) != 5004 {
			t.Fatalf("Filter kept %d, want 5004", len(got))
		}
		for i, v := range got {
			if v != 2*i {
				t.Fatalf("Filter[%d] = %d, want %d", i, v, 2*i)
			}
		}
		if c := CountIf(ctx, xs, even); c != 5004 {
			t.Fatalf("CountIf = %d, want 5004", c)
		}
		flags := Map(ctx, xs, even)
		packed := Pack(ctx, xs, flags)
		if len(packed) != len(got) {
			t.Fatalf("Pack kept %d, want %d", len(packed), len(got))
		}
		idx := PackIndex(ctx, flags)
		for i, v := range idx {
			if v != 2*i {
				t.Fatalf("PackIndex[%d] = %d", i, v)
			}
		}
	})
}

func TestFlatten(t *testing.T) {
	run(lcws.ConsLCWS, func(ctx *lcws.Ctx) {
		xss := [][]int{{1, 2}, nil, {3}, {4, 5, 6}, {}}
		got := Flatten(ctx, xss)
		want := []int{1, 2, 3, 4, 5, 6}
		if len(got) != len(want) {
			t.Fatalf("Flatten = %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Flatten = %v, want %v", got, want)
			}
		}
	})
}

func TestReverse(t *testing.T) {
	run(lcws.USLCWS, func(ctx *lcws.Ctx) {
		for _, n := range []int{0, 1, 2, 101, 1000} {
			xs := Iota(ctx, n)
			Reverse(ctx, xs)
			for i, v := range xs {
				if v != n-1-i {
					t.Fatalf("n=%d: Reverse[%d] = %d", n, i, v)
				}
			}
		}
	})
}

func TestSortMatchesStdlib(t *testing.T) {
	runAll(t, func(ctx *lcws.Ctx) {
		xs := randomInts(11, 30000, 1000)
		want := append([]int(nil), xs...)
		sort.Ints(want)
		Sort(ctx, xs)
		for i := range want {
			if xs[i] != want[i] {
				t.Fatalf("Sort mismatch at %d: %d != %d", i, xs[i], want[i])
			}
		}
	})
}

func TestSortEdgeCases(t *testing.T) {
	run(lcws.SignalLCWS, func(ctx *lcws.Ctx) {
		for _, xs := range [][]int{nil, {}, {1}, {2, 1}, {1, 1, 1}} {
			cp := append([]int(nil), xs...)
			Sort(ctx, cp)
			if !sort.IntsAreSorted(cp) {
				t.Fatalf("Sort(%v) = %v", xs, cp)
			}
		}
		// Already sorted and reverse sorted inputs.
		asc := Iota(ctx, 10000)
		Sort(ctx, asc)
		if !sort.IntsAreSorted(asc) {
			t.Fatal("Sort broke a sorted slice")
		}
		desc := Iota(ctx, 10000)
		Reverse(ctx, desc)
		Sort(ctx, desc)
		if !sort.IntsAreSorted(desc) {
			t.Fatal("Sort failed on a reverse-sorted slice")
		}
	})
}

type pair struct{ k, seq int }

func TestSortFuncIsStable(t *testing.T) {
	run(lcws.WS, func(ctx *lcws.Ctx) {
		g := rng.New(5)
		n := 50000
		xs := make([]pair, n)
		for i := range xs {
			xs[i] = pair{k: g.Intn(50), seq: i}
		}
		SortFunc(ctx, xs, func(a, b pair) bool { return a.k < b.k })
		for i := 1; i < n; i++ {
			if xs[i-1].k > xs[i].k {
				t.Fatalf("not sorted at %d", i)
			}
			if xs[i-1].k == xs[i].k && xs[i-1].seq > xs[i].seq {
				t.Fatalf("not stable at %d: seq %d before %d", i, xs[i-1].seq, xs[i].seq)
			}
		}
	})
}

func TestSortPropertyRandomLengths(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n := g.Intn(20000)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = g.Intn(256) - 128
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		ok := true
		run(lcws.HalfLCWS, func(ctx *lcws.Ctx) {
			Sort(ctx, xs)
			if !IsSorted(ctx, xs, func(a, b int) bool { return a < b }) {
				ok = false
			}
		})
		if !ok {
			return false
		}
		for i := range want {
			if xs[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestIsSorted(t *testing.T) {
	run(lcws.WS, func(ctx *lcws.Ctx) {
		less := func(a, b int) bool { return a < b }
		if !IsSorted(ctx, []int{1, 2, 2, 3}, less) {
			t.Error("sorted slice reported unsorted")
		}
		if IsSorted(ctx, []int{2, 1}, less) {
			t.Error("unsorted slice reported sorted")
		}
		if !IsSorted(ctx, []int{}, less) || !IsSorted(ctx, []int{9}, less) {
			t.Error("trivial slices reported unsorted")
		}
	})
}

func TestIntegerSort(t *testing.T) {
	runAll(t, func(ctx *lcws.Ctx) {
		g := rng.New(21)
		n := 40000
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = g.Uint64n(1 << 20)
		}
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		IntegerSort(ctx, keys, 20)
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("IntegerSort mismatch at %d", i)
			}
		}
	})
}

func TestIntegerSortAutoBitsAndFullWidth(t *testing.T) {
	run(lcws.SignalLCWS, func(ctx *lcws.Ctx) {
		g := rng.New(23)
		keys := make([]uint64, 10000)
		for i := range keys {
			keys[i] = g.Uint64() // full 64-bit keys
		}
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		IntegerSort(ctx, keys, 0) // auto bits
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("full-width IntegerSort mismatch at %d", i)
			}
		}
	})
}

func TestIntegerSortPairsStable(t *testing.T) {
	run(lcws.ConsLCWS, func(ctx *lcws.Ctx) {
		g := rng.New(29)
		n := 30000
		keys := make([]uint64, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = g.Uint64n(64)
			vals[i] = i
		}
		IntegerSortPairs(ctx, keys, vals, 6)
		for i := 1; i < n; i++ {
			if keys[i-1] > keys[i] {
				t.Fatalf("pairs not sorted at %d", i)
			}
			if keys[i-1] == keys[i] && vals[i-1] > vals[i] {
				t.Fatalf("pairs not stable at %d", i)
			}
		}
	})
}

func TestIntegerSortEdgeCases(t *testing.T) {
	run(lcws.WS, func(ctx *lcws.Ctx) {
		IntegerSort(ctx, nil, 8)
		one := []uint64{5}
		IntegerSort(ctx, one, 8)
		if one[0] != 5 {
			t.Error("1-element IntegerSort changed the element")
		}
		same := []uint64{7, 7, 7, 7}
		IntegerSort(ctx, same, 3)
		for _, v := range same {
			if v != 7 {
				t.Error("constant IntegerSort changed values")
			}
		}
	})
}

func TestHistogramSmallAndLarge(t *testing.T) {
	runAll(t, func(ctx *lcws.Ctx) {
		for _, m := range []int{16, 100000} { // small (blocked) and large (atomic) paths
			keys := randomInts(31, 50000, m)
			got := Histogram(ctx, keys, m)
			want := make([]int, m)
			for _, k := range keys {
				want[k]++
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("m=%d: Histogram[%d] = %d, want %d", m, k, got[k], want[k])
				}
			}
		}
	})
}

func TestHistogramEmptyAndZeroBuckets(t *testing.T) {
	run(lcws.WS, func(ctx *lcws.Ctx) {
		if got := Histogram(ctx, nil, 4); len(got) != 4 {
			t.Fatalf("Histogram(nil, 4) length = %d", len(got))
		}
		if got := Histogram(ctx, nil, 0); got != nil {
			t.Fatal("Histogram with m=0 should be nil")
		}
	})
}

func TestHistogramByKeyAndRemoveDuplicates(t *testing.T) {
	run(lcws.SignalLCWS, func(ctx *lcws.Ctx) {
		keys := []uint64{5, 1, 5, 5, 2, 1}
		uniq, counts := HistogramByKey(ctx, keys)
		wantU := []uint64{1, 2, 5}
		wantC := []int{2, 1, 3}
		if len(uniq) != 3 {
			t.Fatalf("HistogramByKey uniq = %v", uniq)
		}
		for i := range wantU {
			if uniq[i] != wantU[i] || counts[i] != wantC[i] {
				t.Fatalf("HistogramByKey = %v/%v, want %v/%v", uniq, counts, wantU, wantC)
			}
		}
		dedup := RemoveDuplicates(ctx, keys)
		if len(dedup) != 3 || dedup[0] != 1 || dedup[2] != 5 {
			t.Fatalf("RemoveDuplicates = %v", dedup)
		}
		if u, c := HistogramByKey(ctx, nil); u != nil || c != nil {
			t.Fatal("HistogramByKey(nil) should be nil, nil")
		}
	})
}

func TestRemoveDuplicatesLarge(t *testing.T) {
	run(lcws.HalfLCWS, func(ctx *lcws.Ctx) {
		g := rng.New(41)
		n := 60000
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = g.Uint64n(1000)
		}
		got := RemoveDuplicates(ctx, keys)
		seen := map[uint64]bool{}
		for _, k := range keys {
			seen[k] = true
		}
		if len(got) != len(seen) {
			t.Fatalf("RemoveDuplicates kept %d, want %d", len(got), len(seen))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatal("RemoveDuplicates output not strictly increasing")
			}
		}
	})
}

func TestBoundsHelpers(t *testing.T) {
	xs := []int{1, 3, 3, 3, 7}
	less := func(a, b int) bool { return a < b }
	if got := lowerBound(xs, 3, less); got != 1 {
		t.Errorf("lowerBound = %d, want 1", got)
	}
	if got := upperBound(xs, 3, less); got != 4 {
		t.Errorf("upperBound = %d, want 4", got)
	}
	if got := lowerBound(xs, 0, less); got != 0 {
		t.Errorf("lowerBound(0) = %d, want 0", got)
	}
	if got := upperBound(xs, 9, less); got != 5 {
		t.Errorf("upperBound(9) = %d, want 5", got)
	}
}

func TestSampleSortMatchesStdlib(t *testing.T) {
	runAll(t, func(ctx *lcws.Ctx) {
		xs := randomInts(77, 120_000, 1<<20)
		want := append([]int(nil), xs...)
		sort.Ints(want)
		SampleSort(ctx, xs)
		for i := range want {
			if xs[i] != want[i] {
				t.Fatalf("SampleSort mismatch at %d: %d != %d", i, xs[i], want[i])
			}
		}
	})
}

func TestSampleSortManyDuplicates(t *testing.T) {
	run(lcws.SignalLCWS, func(ctx *lcws.Ctx) {
		xs := randomInts(79, 100_000, 8) // heavy duplication across pivots
		want := append([]int(nil), xs...)
		sort.Ints(want)
		SampleSort(ctx, xs)
		for i := range want {
			if xs[i] != want[i] {
				t.Fatalf("duplicate-heavy SampleSort mismatch at %d", i)
			}
		}
	})
}

func TestSampleSortSmallFallsBack(t *testing.T) {
	run(lcws.WS, func(ctx *lcws.Ctx) {
		xs := randomInts(81, 1000, 100)
		SampleSort(ctx, xs)
		if !sort.IntsAreSorted(xs) {
			t.Fatal("small SampleSort not sorted")
		}
		var empty []int
		SampleSort(ctx, empty)
	})
}

func TestSampleSortFuncCustomOrder(t *testing.T) {
	run(lcws.HalfLCWS, func(ctx *lcws.Ctx) {
		xs := randomInts(83, 50_000, 1<<16)
		SampleSortFunc(ctx, xs, func(a, b int) bool { return a > b }) // descending
		for i := 1; i < len(xs); i++ {
			if xs[i-1] < xs[i] {
				t.Fatalf("descending SampleSort violated at %d", i)
			}
		}
	})
}

func TestSampleSortSortedAndReversedInputs(t *testing.T) {
	run(lcws.ConsLCWS, func(ctx *lcws.Ctx) {
		asc := Iota(ctx, 100_000)
		SampleSort(ctx, asc)
		if !sort.IntsAreSorted(asc) {
			t.Fatal("SampleSort broke sorted input")
		}
		desc := Iota(ctx, 100_000)
		Reverse(ctx, desc)
		SampleSort(ctx, desc)
		if !sort.IntsAreSorted(desc) {
			t.Fatal("SampleSort failed on reversed input")
		}
	})
}

// TestScanNonCommutativeOp checks Scan with an associative but
// NON-commutative operation (2x2 integer matrix multiplication): any
// block-recombination order bug that a commutative sum would hide fails
// here.
func TestScanNonCommutativeOp(t *testing.T) {
	type mat [4]int64 // row-major 2x2
	mul := func(a, b mat) mat {
		return mat{
			a[0]*b[0] + a[1]*b[2], a[0]*b[1] + a[1]*b[3],
			a[2]*b[0] + a[3]*b[2], a[2]*b[1] + a[3]*b[3],
		}
	}
	id := mat{1, 0, 0, 1}
	g := rng.New(91)
	n := 20000
	xs := make([]mat, n)
	for i := range xs {
		// Small entries mod a prime keep products bounded; reduce after
		// each multiply to avoid overflow.
		xs[i] = mat{int64(g.Intn(3)), int64(g.Intn(3)), int64(g.Intn(3)), int64(g.Intn(3))}
	}
	const p = 1_000_000_007
	mulMod := func(a, b mat) mat {
		m := mul(a, b)
		for i := range m {
			m[i] %= p
		}
		return m
	}
	var got []mat
	var total mat
	run(lcws.SignalLCWS, func(ctx *lcws.Ctx) {
		got, total = Scan(ctx, xs, id, mulMod)
	})
	acc := id
	for i := range xs {
		if got[i] != acc {
			t.Fatalf("Scan prefix %d wrong", i)
		}
		acc = mulMod(acc, xs[i])
	}
	if total != acc {
		t.Fatal("Scan total wrong")
	}
}

// TestReduceNonCommutativeOp does the same for Reduce (string append via
// bounded-depth rope lengths would allocate too much; use matrices).
func TestReduceNonCommutativeOp(t *testing.T) {
	// Function composition over affine maps x -> a*x+b (mod p):
	// associative, non-commutative.
	type affine struct{ a, b int64 }
	const p = 1_000_000_007
	compose := func(f, g affine) affine {
		// (f ∘ g)(x) = f(g(x)) = a_f*(a_g x + b_g) + b_f
		return affine{f.a * g.a % p, (f.a*g.b + f.b) % p}
	}
	id := affine{1, 0}
	g := rng.New(93)
	xs := make([]affine, 30000)
	for i := range xs {
		xs[i] = affine{int64(g.Intn(1000) + 1), int64(g.Intn(1000))}
	}
	var got affine
	run(lcws.HalfLCWS, func(ctx *lcws.Ctx) {
		got = Reduce(ctx, xs, id, compose)
	})
	want := id
	for _, f := range xs {
		want = compose(want, f)
	}
	if got != want {
		t.Fatalf("Reduce composition = %+v, want %+v", got, want)
	}
}
