package parlay

import (
	"cmp"
	"sort"

	"lcws"
	"lcws/internal/rng"
)

// sampleSortCutoff is the input size below which SampleSort falls back to
// the parallel merge sort (bucketing overhead dominates under it).
const sampleSortCutoff = 1 << 14

// sampleSortOversample is how many sample candidates are drawn per
// bucket; a larger oversampling factor gives more even buckets.
const sampleSortOversample = 8

// SampleSort sorts xs in place with a parallel sample sort — the
// algorithm behind PBBS's comparisonSort: sort a random sample to pick
// pivots, partition the input into buckets by binary-searching the
// pivots, then sort the buckets in parallel. Unlike SortFunc it is not
// stable.
func SampleSort[T cmp.Ordered](ctx *lcws.Ctx, xs []T) {
	SampleSortFunc(ctx, xs, func(a, b T) bool { return a < b })
}

// SampleSortFunc is SampleSort with an explicit ordering.
func SampleSortFunc[T any](ctx *lcws.Ctx, xs []T, less func(a, b T) bool) {
	n := len(xs)
	if n < sampleSortCutoff {
		SortFunc(ctx, xs, less)
		return
	}
	// One bucket per ~8K elements, capped so bucket bookkeeping stays
	// cheap relative to the sorting itself.
	numBuckets := n / (8 << 10)
	if numBuckets < 2 {
		numBuckets = 2
	}
	if numBuckets > 256 {
		numBuckets = 256
	}

	// Deterministic pseudo-random sample, then sorted; every
	// oversample-th element becomes a pivot.
	sampleSize := numBuckets * sampleSortOversample
	sample := Tabulate(ctx, sampleSize, func(i int) T {
		return xs[int(rng.Hash64(uint64(i)^0x5a5a)%uint64(n))]
	})
	sortLeaf(sample, less)
	pivots := make([]T, numBuckets-1)
	for i := range pivots {
		pivots[i] = sample[(i+1)*sampleSortOversample]
	}

	// Classify each block's elements and count per-block bucket sizes.
	grain := (n + numBuckets - 1) / numBuckets
	nb := numBlocks(n, grain)
	bucketOf := make([]uint8, n)
	counts := make([]int, nb*numBuckets)
	lcws.ParFor(ctx, 0, nb, 1, func(ctx *lcws.Ctx, b int) {
		lo, hi := blockRange(b, n, grain)
		row := counts[b*numBuckets : (b+1)*numBuckets]
		for i := lo; i < hi; i++ {
			k := lowerBound(pivots, xs[i], less)
			// Elements equal to their pivot go to the bucket after it,
			// so every element of bucket k is strictly below pivots[k].
			if k < len(pivots) && !less(xs[i], pivots[k]) && !less(pivots[k], xs[i]) {
				k++
			}
			bucketOf[i] = uint8(k)
			row[k]++
		}
		ctx.Poll()
	})

	// Column-major prefix sums give every (bucket, block) its offset.
	offsets := make([]int, numBuckets+1)
	pos := 0
	for k := 0; k < numBuckets; k++ {
		offsets[k] = pos
		for b := 0; b < nb; b++ {
			idx := b*numBuckets + k
			c := counts[idx]
			counts[idx] = pos
			pos += c
		}
	}
	offsets[numBuckets] = pos

	// Scatter into bucket order.
	tmp := make([]T, n)
	lcws.ParFor(ctx, 0, nb, 1, func(ctx *lcws.Ctx, b int) {
		lo, hi := blockRange(b, n, grain)
		row := counts[b*numBuckets : (b+1)*numBuckets]
		for i := lo; i < hi; i++ {
			k := bucketOf[i]
			tmp[row[k]] = xs[i]
			row[k]++
		}
		ctx.Poll()
	})

	// Sort every bucket in parallel, writing back into xs.
	lcws.ParFor(ctx, 0, numBuckets, 1, func(ctx *lcws.Ctx, k int) {
		lo, hi := offsets[k], offsets[k+1]
		bucket := tmp[lo:hi]
		sort.Slice(bucket, func(i, j int) bool { return less(bucket[i], bucket[j]) })
		copy(xs[lo:hi], bucket)
		ctx.Poll()
	})
}
