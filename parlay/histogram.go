package parlay

import (
	"fmt"
	"sync/atomic"

	"lcws"
)

// histSmallBuckets is the largest bucket count for which Histogram uses
// per-block private histograms (memory nb×m); above it, shared atomic
// counters are used instead.
const histSmallBuckets = 2048

// Histogram counts the occurrences of every key in [0, m); keys outside
// the range cause a panic. This is the PBBS histogram kernel. For small m
// it uses per-block private histograms combined with a parallel reduction;
// for large m it increments shared atomic counters (PBBS similarly
// switches strategy on bucket count).
func Histogram(ctx *lcws.Ctx, keys []int, m int) []int {
	if m <= 0 {
		return nil
	}
	n := len(keys)
	if m <= histSmallBuckets {
		nb := numBlocks(n, defaultGrain)
		if nb == 0 {
			return make([]int, m)
		}
		local := make([]int, nb*m)
		lcws.ParFor(ctx, 0, nb, 1, func(ctx *lcws.Ctx, b int) {
			lo, hi := blockRange(b, n, defaultGrain)
			row := local[b*m : (b+1)*m]
			for i := lo; i < hi; i++ {
				k := keys[i]
				if k < 0 || k >= m {
					panic(fmt.Sprintf("parlay: Histogram key %d out of range [0,%d)", k, m))
				}
				row[k]++
			}
		})
		// Reduce the per-block rows column-wise in parallel.
		return Tabulate(ctx, m, func(k int) int {
			total := 0
			for b := 0; b < nb; b++ {
				total += local[b*m+k]
			}
			return total
		})
	}
	shared := make([]atomic.Int64, m)
	lcws.ParFor(ctx, 0, n, 0, func(ctx *lcws.Ctx, i int) {
		k := keys[i]
		if k < 0 || k >= m {
			panic(fmt.Sprintf("parlay: Histogram key %d out of range [0,%d)", k, m))
		}
		shared[k].Add(1)
	})
	return Tabulate(ctx, m, func(k int) int { return int(shared[k].Load()) })
}

// HistogramByKey counts occurrences of arbitrary uint64 keys by sorting,
// returning (unique keys in ascending order, counts). This mirrors PBBS's
// histogram-by-key via integer sort.
func HistogramByKey(ctx *lcws.Ctx, keys []uint64) (uniq []uint64, counts []int) {
	n := len(keys)
	if n == 0 {
		return nil, nil
	}
	sorted := make([]uint64, n)
	copy(sorted, keys)
	IntegerSort(ctx, sorted, 0)
	return countRuns(ctx, sorted)
}

// countRuns returns the distinct values and run lengths of a sorted slice.
func countRuns(ctx *lcws.Ctx, sorted []uint64) ([]uint64, []int) {
	n := len(sorted)
	if n == 0 {
		return nil, nil
	}
	// starts[i] = run begins at i.
	starts := Tabulate(ctx, n, func(i int) bool {
		return i == 0 || sorted[i] != sorted[i-1]
	})
	idx := PackIndex(ctx, starts)
	uniq := Tabulate(ctx, len(idx), func(j int) uint64 { return sorted[idx[j]] })
	counts := Tabulate(ctx, len(idx), func(j int) int {
		end := n
		if j+1 < len(idx) {
			end = idx[j+1]
		}
		return end - idx[j]
	})
	return uniq, counts
}

// RemoveDuplicates returns the distinct values of xs in ascending order
// (PBBS removeDuplicates kernel, sort-based).
func RemoveDuplicates(ctx *lcws.Ctx, xs []uint64) []uint64 {
	uniq, _ := HistogramByKey(ctx, xs)
	return uniq
}
