// Package parlay is a Go rendition of the ParlayLib parallel-sequence
// toolkit (Blelloch, Anderson, Dhulipala; SPAA 2020) built on the lcws
// schedulers. It provides the data-parallel primitives the PBBS-style
// benchmarks in package pbbs are written against: tabulate/map, reduce,
// scan, filter/pack, flatten, comparison and integer sorts, histograms and
// duplicate removal.
//
// Every primitive takes the worker context of the enclosing task and is
// safe to nest arbitrarily. As in Parlay, primitives are oblivious to the
// scheduling policy underneath: the same benchmark code runs under the WS
// baseline and under every LCWS variant, which is exactly the property the
// paper's contribution (2) establishes. Leaf loops poll the scheduler
// (via lcws.ParFor) so the signal-based LCWS schedulers can expose work in
// the middle of long sequential stretches.
package parlay

import (
	"cmp"
	"sort"

	"lcws"
)

// Number is the constraint for arithmetic reductions.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// defaultGrain is the sequential leaf size used by the blocked primitives
// when the caller passes no explicit grain.
const defaultGrain = 2048

// numBlocks returns how many grain-sized blocks cover n elements.
func numBlocks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	return (n + grain - 1) / grain
}

// blockRange returns the half-open element range of block b.
func blockRange(b, n, grain int) (lo, hi int) {
	lo = b * grain
	hi = lo + grain
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Iota returns [0, 1, ..., n-1].
func Iota(ctx *lcws.Ctx, n int) []int {
	return Tabulate(ctx, n, func(i int) int { return i })
}

// Tabulate returns [f(0), f(1), ..., f(n-1)], computing the entries in
// parallel.
func Tabulate[T any](ctx *lcws.Ctx, n int, f func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	lcws.ParFor(ctx, 0, n, 0, func(ctx *lcws.Ctx, i int) {
		out[i] = f(i)
	})
	return out
}

// Map applies f to every element of in, in parallel.
func Map[T, U any](ctx *lcws.Ctx, in []T, f func(T) U) []U {
	return Tabulate(ctx, len(in), func(i int) U { return f(in[i]) })
}

// Reduce combines xs with the associative operation op and identity id.
func Reduce[T any](ctx *lcws.Ctx, xs []T, id T, op func(a, b T) T) T {
	var rec func(ctx *lcws.Ctx, lo, hi int) T
	rec = func(ctx *lcws.Ctx, lo, hi int) T {
		if hi-lo <= defaultGrain {
			acc := id
			for i := lo; i < hi; i++ {
				acc = op(acc, xs[i])
			}
			ctx.Poll()
			return acc
		}
		mid := lo + (hi-lo)/2
		var l, r T
		lcws.Fork2(ctx,
			func(ctx *lcws.Ctx) { l = rec(ctx, lo, mid) },
			func(ctx *lcws.Ctx) { r = rec(ctx, mid, hi) },
		)
		return op(l, r)
	}
	return rec(ctx, 0, len(xs))
}

// Sum returns the arithmetic sum of xs.
func Sum[T Number](ctx *lcws.Ctx, xs []T) T {
	var zero T
	return Reduce(ctx, xs, zero, func(a, b T) T { return a + b })
}

// Max returns the maximum element of xs; ok is false when xs is empty.
func Max[T cmp.Ordered](ctx *lcws.Ctx, xs []T) (best T, ok bool) {
	if len(xs) == 0 {
		return best, false
	}
	return Reduce(ctx, xs[1:], xs[0], func(a, b T) T {
		if b > a {
			return b
		}
		return a
	}), true
}

// Min returns the minimum element of xs; ok is false when xs is empty.
func Min[T cmp.Ordered](ctx *lcws.Ctx, xs []T) (best T, ok bool) {
	if len(xs) == 0 {
		return best, false
	}
	return Reduce(ctx, xs[1:], xs[0], func(a, b T) T {
		if b < a {
			return b
		}
		return a
	}), true
}

// CountIf returns the number of elements satisfying pred.
func CountIf[T any](ctx *lcws.Ctx, xs []T, pred func(T) bool) int {
	counts := blockCounts(ctx, len(xs), defaultGrain, func(lo, hi int) int {
		n := 0
		for i := lo; i < hi; i++ {
			if pred(xs[i]) {
				n++
			}
		}
		return n
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// blockCounts evaluates f on every grain-sized block in parallel and
// returns the per-block results.
func blockCounts(ctx *lcws.Ctx, n, grain int, f func(lo, hi int) int) []int {
	nb := numBlocks(n, grain)
	counts := make([]int, nb)
	lcws.ParFor(ctx, 0, nb, 1, func(ctx *lcws.Ctx, b int) {
		lo, hi := blockRange(b, n, grain)
		counts[b] = f(lo, hi)
	})
	return counts
}

// Scan computes the exclusive prefix "sums" of xs under (id, op):
// out[i] = op(xs[0], ..., xs[i-1]), out[0] = id. It returns the output and
// the total reduction. op must be associative.
func Scan[T any](ctx *lcws.Ctx, xs []T, id T, op func(a, b T) T) ([]T, T) {
	n := len(xs)
	out := make([]T, n)
	total := ScanInto(ctx, xs, out, id, op)
	return out, total
}

// ScanInto is Scan writing into a caller-provided slice (out may alias
// xs). It returns the total reduction.
func ScanInto[T any](ctx *lcws.Ctx, xs, out []T, id T, op func(a, b T) T) T {
	n := len(xs)
	if len(out) != n {
		panic("parlay: ScanInto output length mismatch")
	}
	if n == 0 {
		return id
	}
	grain := defaultGrain
	nb := numBlocks(n, grain)
	if nb == 1 {
		acc := id
		for i := 0; i < n; i++ {
			x := xs[i]
			out[i] = acc
			acc = op(acc, x)
		}
		ctx.Poll()
		return acc
	}
	// Upsweep: reduce each block in parallel.
	sums := make([]T, nb)
	lcws.ParFor(ctx, 0, nb, 1, func(ctx *lcws.Ctx, b int) {
		lo, hi := blockRange(b, n, grain)
		acc := id
		for i := lo; i < hi; i++ {
			acc = op(acc, xs[i])
		}
		sums[b] = acc
	})
	// Sequential scan over the (few) block sums.
	acc := id
	for b := 0; b < nb; b++ {
		s := sums[b]
		sums[b] = acc
		acc = op(acc, s)
	}
	// Downsweep: scan each block seeded with its prefix.
	lcws.ParFor(ctx, 0, nb, 1, func(ctx *lcws.Ctx, b int) {
		lo, hi := blockRange(b, n, grain)
		a := sums[b]
		for i := lo; i < hi; i++ {
			x := xs[i]
			out[i] = a
			a = op(a, x)
		}
	})
	return acc
}

// ScanInclusive computes inclusive prefix reductions:
// out[i] = op(xs[0], ..., xs[i]).
func ScanInclusive[T any](ctx *lcws.Ctx, xs []T, id T, op func(a, b T) T) []T {
	out, _ := Scan(ctx, xs, id, op)
	lcws.ParFor(ctx, 0, len(xs), 0, func(ctx *lcws.Ctx, i int) {
		out[i] = op(out[i], xs[i])
	})
	return out
}

// Filter returns the elements of xs satisfying pred, preserving order.
func Filter[T any](ctx *lcws.Ctx, xs []T, pred func(T) bool) []T {
	n := len(xs)
	grain := defaultGrain
	counts := blockCounts(ctx, n, grain, func(lo, hi int) int {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(xs[i]) {
				c++
			}
		}
		return c
	})
	offsets := make([]int, len(counts))
	total := 0
	for b, c := range counts {
		offsets[b] = total
		total += c
	}
	out := make([]T, total)
	lcws.ParFor(ctx, 0, len(counts), 1, func(ctx *lcws.Ctx, b int) {
		lo, hi := blockRange(b, n, grain)
		o := offsets[b]
		for i := lo; i < hi; i++ {
			if pred(xs[i]) {
				out[o] = xs[i]
				o++
			}
		}
	})
	return out
}

// Pack returns the elements of xs whose flag is set, preserving order.
func Pack[T any](ctx *lcws.Ctx, xs []T, flags []bool) []T {
	if len(xs) != len(flags) {
		panic("parlay: Pack length mismatch")
	}
	n := len(xs)
	grain := defaultGrain
	counts := blockCounts(ctx, n, grain, func(lo, hi int) int {
		c := 0
		for i := lo; i < hi; i++ {
			if flags[i] {
				c++
			}
		}
		return c
	})
	offsets := make([]int, len(counts))
	total := 0
	for b, c := range counts {
		offsets[b] = total
		total += c
	}
	out := make([]T, total)
	lcws.ParFor(ctx, 0, len(counts), 1, func(ctx *lcws.Ctx, b int) {
		lo, hi := blockRange(b, n, grain)
		o := offsets[b]
		for i := lo; i < hi; i++ {
			if flags[i] {
				out[o] = xs[i]
				o++
			}
		}
	})
	return out
}

// PackIndex returns the indices whose flag is set, in increasing order.
func PackIndex(ctx *lcws.Ctx, flags []bool) []int {
	idx := Iota(ctx, len(flags))
	return Pack(ctx, idx, flags)
}

// Flatten concatenates the inner slices in parallel.
func Flatten[T any](ctx *lcws.Ctx, xss [][]T) []T {
	offsets := make([]int, len(xss))
	total := 0
	for i, xs := range xss {
		offsets[i] = total
		total += len(xs)
	}
	out := make([]T, total)
	lcws.ParFor(ctx, 0, len(xss), 1, func(ctx *lcws.Ctx, i int) {
		copy(out[offsets[i]:], xss[i])
		ctx.Poll()
	})
	return out
}

// Reverse reverses xs in place, in parallel.
func Reverse[T any](ctx *lcws.Ctx, xs []T) {
	n := len(xs)
	lcws.ParFor(ctx, 0, n/2, 0, func(ctx *lcws.Ctx, i int) {
		xs[i], xs[n-1-i] = xs[n-1-i], xs[i]
	})
}

// IsSorted reports whether xs is non-decreasing under less.
func IsSorted[T any](ctx *lcws.Ctx, xs []T, less func(a, b T) bool) bool {
	if len(xs) < 2 {
		return true
	}
	bad := CountIf(ctx, Iota(ctx, len(xs)-1), func(i int) bool {
		return less(xs[i+1], xs[i])
	})
	return bad == 0
}

// sortLeaf sorts xs sequentially; leaves of the parallel sorts land here.
func sortLeaf[T any](xs []T, less func(a, b T) bool) {
	sort.SliceStable(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
}
