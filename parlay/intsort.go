package parlay

import "lcws"

// radixBits is the number of key bits consumed per counting pass of the
// integer sorts.
const radixBits = 8

const radixBuckets = 1 << radixBits

// intSortGrain is the per-block size of the parallel counting passes.
const intSortGrain = 4096

// IntegerSort sorts keys in place with a parallel stable LSD radix sort.
// bits is the number of significant low-order key bits (pass 0 for the
// full 64, or when unknown). This is the PBBS integerSort kernel.
func IntegerSort(ctx *lcws.Ctx, keys []uint64, bits int) {
	IntegerSortPairs[struct{}](ctx, keys, nil, bits)
}

// IntegerSortPairs sorts keys in place and applies the same stable
// permutation to vals (which may be nil, or must have len(keys) elements).
// bits is the number of significant low-order key bits (0 means 64, or
// "compute from the data").
func IntegerSortPairs[V any](ctx *lcws.Ctx, keys []uint64, vals []V, bits int) {
	n := len(keys)
	if vals != nil && len(vals) != n {
		panic("parlay: IntegerSortPairs value length mismatch")
	}
	if n < 2 {
		return
	}
	if bits <= 0 || bits > 64 {
		maxKey, _ := Max(ctx, keys)
		bits = 1
		for maxKey > 1 {
			maxKey >>= 1
			bits++
		}
	}
	passes := (bits + radixBits - 1) / radixBits

	srcK, dstK := keys, make([]uint64, n)
	var srcV, dstV []V
	if vals != nil {
		srcV, dstV = vals, make([]V, n)
	}

	nb := numBlocks(n, intSortGrain)
	// counts[b*radixBuckets+d] = occurrences of digit d in block b.
	counts := make([]int, nb*radixBuckets)

	for p := 0; p < passes; p++ {
		shift := uint(p * radixBits)
		// Count digits per block in parallel.
		lcws.ParFor(ctx, 0, nb, 1, func(ctx *lcws.Ctx, b int) {
			lo, hi := blockRange(b, n, intSortGrain)
			row := counts[b*radixBuckets : (b+1)*radixBuckets]
			for i := range row {
				row[i] = 0
			}
			for i := lo; i < hi; i++ {
				row[(srcK[i]>>shift)&(radixBuckets-1)]++
			}
		})
		// Column-major prefix sums give each (digit, block) its stable
		// output offset. radixBuckets*nb entries: cheap sequentially.
		off := 0
		for d := 0; d < radixBuckets; d++ {
			for b := 0; b < nb; b++ {
				idx := b*radixBuckets + d
				c := counts[idx]
				counts[idx] = off
				off += c
			}
		}
		// Scatter in parallel; within a block the scan order preserves
		// stability.
		lcws.ParFor(ctx, 0, nb, 1, func(ctx *lcws.Ctx, b int) {
			lo, hi := blockRange(b, n, intSortGrain)
			row := counts[b*radixBuckets : (b+1)*radixBuckets]
			for i := lo; i < hi; i++ {
				d := (srcK[i] >> shift) & (radixBuckets - 1)
				o := row[d]
				row[d] = o + 1
				dstK[o] = srcK[i]
				if srcV != nil {
					dstV[o] = srcV[i]
				}
			}
		})
		srcK, dstK = dstK, srcK
		if vals != nil {
			srcV, dstV = dstV, srcV
		}
	}
	// After an odd number of passes the result lives in the scratch
	// buffers; copy it back.
	if passes%2 == 1 {
		lcws.ParFor(ctx, 0, n, 0, func(ctx *lcws.Ctx, i int) {
			dstK[i] = srcK[i]
		})
		if vals != nil {
			lcws.ParFor(ctx, 0, n, 0, func(ctx *lcws.Ctx, i int) {
				dstV[i] = srcV[i]
			})
		}
	}
}
