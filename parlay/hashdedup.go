package parlay

import (
	"math"
	"sync/atomic"

	"lcws"
	"lcws/internal/rng"
)

// HashDedup returns the distinct values of xs in unspecified order using
// a phase-concurrent open-addressing hash table: all insertions happen in
// one parallel phase (CAS claims on linear-probed slots), then the table
// is compacted in a second. This is the algorithm behind PBBS's
// removeDuplicates benchmark proper; the sort-based RemoveDuplicates is
// kept for when ascending output is wanted.
//
// Values must be less than math.MaxUint64 (one value is reserved as the
// empty-slot marker via a +1 offset).
func HashDedup(ctx *lcws.Ctx, xs []uint64) []uint64 {
	n := len(xs)
	if n == 0 {
		return nil
	}
	// Table size: next power of two above 2n keeps the load factor
	// under one half, so linear probing stays short.
	size := 1
	for size < 2*n {
		size <<= 1
	}
	mask := uint64(size - 1)
	table := make([]atomic.Uint64, size)

	lcws.ParFor(ctx, 0, n, 0, func(ctx *lcws.Ctx, i int) {
		v := xs[i]
		if v == math.MaxUint64 {
			panic("parlay: HashDedup value MaxUint64 is reserved")
		}
		stored := v + 1 // 0 marks an empty slot
		slot := rng.Hash64(v) & mask
		for {
			cur := table[slot].Load()
			if cur == stored {
				return // duplicate already present
			}
			if cur == 0 && table[slot].CompareAndSwap(0, stored) {
				return
			}
			if table[slot].Load() == stored {
				return // lost the race to an equal value
			}
			slot = (slot + 1) & mask
		}
	})

	// Compact the occupied slots.
	occupied := Tabulate(ctx, size, func(i int) uint64 { return table[i].Load() })
	kept := Filter(ctx, occupied, func(v uint64) bool { return v != 0 })
	return Map(ctx, kept, func(v uint64) uint64 { return v - 1 })
}
