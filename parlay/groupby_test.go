package parlay

import (
	"sort"
	"testing"

	"lcws"
	"lcws/internal/rng"
)

func TestGroupByKeySmall(t *testing.T) {
	run(lcws.SignalLCWS, func(ctx *lcws.Ctx) {
		keys := []string{"b", "a", "b", "c", "a", "b"}
		vals := []int{1, 2, 3, 4, 5, 6}
		groups := GroupByKey(ctx, keys, vals)
		if len(groups) != 3 {
			t.Fatalf("groups = %v", groups)
		}
		want := map[string][]int{"a": {2, 5}, "b": {1, 3, 6}, "c": {4}}
		prev := ""
		for _, g := range groups {
			if g.Key <= prev {
				t.Fatalf("keys not ascending: %v", groups)
			}
			prev = g.Key
			ref := want[g.Key]
			if len(ref) != len(g.Values) {
				t.Fatalf("group %q = %v, want %v", g.Key, g.Values, ref)
			}
			for i := range ref {
				if g.Values[i] != ref[i] {
					t.Fatalf("group %q = %v, want %v (input order)", g.Key, g.Values, ref)
				}
			}
		}
	})
}

func TestGroupByKeyEmptyAndMismatch(t *testing.T) {
	run(lcws.WS, func(ctx *lcws.Ctx) {
		if g := GroupByKey[int, int](ctx, nil, nil); g != nil {
			t.Errorf("empty GroupByKey = %v", g)
		}
		defer func() {
			if recover() == nil {
				t.Error("length mismatch did not panic")
			}
		}()
		GroupByKey(ctx, []int{1}, []int{1, 2})
	})
}

func TestGroupByKeyLargeRandom(t *testing.T) {
	run(lcws.HalfLCWS, func(ctx *lcws.Ctx) {
		g := rng.New(7)
		n := 30000
		keys := make([]int, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = g.Intn(100)
			vals[i] = i
		}
		groups := GroupByKey(ctx, keys, vals)
		total := 0
		for _, gr := range groups {
			total += len(gr.Values)
			for i := 1; i < len(gr.Values); i++ {
				if gr.Values[i-1] >= gr.Values[i] {
					t.Fatal("group values not in input order")
				}
			}
			for _, v := range gr.Values {
				if keys[v] != gr.Key {
					t.Fatal("value grouped under wrong key")
				}
			}
		}
		if total != n {
			t.Fatalf("groups cover %d values, want %d", total, n)
		}
	})
}

func TestCountByKey(t *testing.T) {
	run(lcws.ConsLCWS, func(ctx *lcws.Ctx) {
		keys := []int{5, 1, 5, 5, 2, 1}
		uniq, counts := CountByKey(ctx, keys)
		wantU := []int{1, 2, 5}
		wantC := []int{2, 1, 3}
		for i := range wantU {
			if uniq[i] != wantU[i] || counts[i] != wantC[i] {
				t.Fatalf("CountByKey = %v/%v", uniq, counts)
			}
		}
		if u, c := CountByKey[int](ctx, nil); u != nil || c != nil {
			t.Error("empty CountByKey not nil")
		}
	})
}

func TestMinMaxIndex(t *testing.T) {
	run(lcws.USLCWS, func(ctx *lcws.Ctx) {
		xs := []int{3, 1, 4, 1, 5, 9, 2, 9}
		if got := MinIndex(ctx, xs); got != 1 {
			t.Errorf("MinIndex = %d, want 1 (first of the ties)", got)
		}
		if got := MaxIndex(ctx, xs); got != 5 {
			t.Errorf("MaxIndex = %d, want 5 (first of the ties)", got)
		}
		if got := MinIndex(ctx, []int{}); got != -1 {
			t.Errorf("MinIndex(empty) = %d", got)
		}
	})
}

func TestMinIndexLargeFirstTie(t *testing.T) {
	run(lcws.SignalLCWS, func(ctx *lcws.Ctx) {
		n := 50000
		xs := make([]int, n)
		for i := range xs {
			xs[i] = 7
		}
		xs[12345] = 1
		xs[40000] = 1
		if got := MinIndex(ctx, xs); got != 12345 {
			t.Errorf("MinIndex = %d, want 12345", got)
		}
	})
}

func TestFindIf(t *testing.T) {
	run(lcws.HalfLCWS, func(ctx *lcws.Ctx) {
		xs := Iota(ctx, 100000)
		if got := FindIf(ctx, xs, func(x int) bool { return x == 70000 }); got != 70000 {
			t.Errorf("FindIf = %d, want 70000", got)
		}
		if got := FindIf(ctx, xs, func(x int) bool { return x == 3 }); got != 3 {
			t.Errorf("FindIf near front = %d, want 3", got)
		}
		if got := FindIf(ctx, xs, func(x int) bool { return false }); got != -1 {
			t.Errorf("FindIf no-match = %d, want -1", got)
		}
		if got := FindIf(ctx, []int{}, func(x int) bool { return true }); got != -1 {
			t.Errorf("FindIf empty = %d", got)
		}
		// The lowest matching index must win even with many matches.
		if got := FindIf(ctx, xs, func(x int) bool { return x%977 == 5 }); got != 5 {
			t.Errorf("FindIf multiple matches = %d, want 5", got)
		}
	})
}

func TestUnique(t *testing.T) {
	run(lcws.WS, func(ctx *lcws.Ctx) {
		got := Unique(ctx, []int{1, 1, 2, 3, 3, 3, 1})
		want := []int{1, 2, 3, 1} // adjacent duplicates only
		if len(got) != len(want) {
			t.Fatalf("Unique = %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Unique = %v, want %v", got, want)
			}
		}
		if got := Unique(ctx, []int{}); got != nil {
			t.Errorf("Unique(empty) = %v", got)
		}
	})
}

func TestMerge(t *testing.T) {
	run(lcws.SignalLCWS, func(ctx *lcws.Ctx) {
		g := rng.New(31)
		a := make([]int, 20000)
		b := make([]int, 30000)
		for i := range a {
			a[i] = g.Intn(1000)
		}
		for i := range b {
			b[i] = g.Intn(1000)
		}
		sort.Ints(a)
		sort.Ints(b)
		got := Merge(ctx, a, b)
		want := append(append([]int{}, a...), b...)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Merge mismatch at %d", i)
			}
		}
		if got := Merge(ctx, []int{}, []int{}); len(got) != 0 {
			t.Errorf("Merge of empties = %v", got)
		}
	})
}

type kv struct{ k, seq int }

func TestMergeFuncStable(t *testing.T) {
	run(lcws.WS, func(ctx *lcws.Ctx) {
		a := []kv{{1, 0}, {2, 1}, {2, 2}}
		b := []kv{{1, 10}, {2, 11}}
		got := MergeFunc(ctx, a, b, func(x, y kv) bool { return x.k < y.k })
		// Stability: within equal keys, all of a's entries precede b's.
		want := []kv{{1, 0}, {1, 10}, {2, 1}, {2, 2}, {2, 11}}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MergeFunc = %v, want %v", got, want)
			}
		}
	})
}

func TestHashDedupMatchesSet(t *testing.T) {
	runAll(t, func(ctx *lcws.Ctx) {
		g := rng.New(51)
		n := 50000
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = g.Uint64n(2000)
		}
		got := HashDedup(ctx, xs)
		want := map[uint64]bool{}
		for _, v := range xs {
			want[v] = true
		}
		if len(got) != len(want) {
			t.Fatalf("HashDedup kept %d, want %d", len(got), len(want))
		}
		seen := map[uint64]bool{}
		for _, v := range got {
			if !want[v] {
				t.Fatalf("value %d not in input", v)
			}
			if seen[v] {
				t.Fatalf("value %d duplicated in output", v)
			}
			seen[v] = true
		}
	})
}

func TestHashDedupEdgeCases(t *testing.T) {
	run(lcws.SignalLCWS, func(ctx *lcws.Ctx) {
		if got := HashDedup(ctx, nil); got != nil {
			t.Errorf("HashDedup(nil) = %v", got)
		}
		one := HashDedup(ctx, []uint64{7, 7, 7})
		if len(one) != 1 || one[0] != 7 {
			t.Errorf("HashDedup constant = %v", one)
		}
		// Zero values must round-trip through the +1 offset.
		zeros := HashDedup(ctx, []uint64{0, 0, 1})
		if len(zeros) != 2 {
			t.Errorf("HashDedup with zeros = %v", zeros)
		}
	})
}

func TestHashDedupReservedValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MaxUint64 input did not panic")
		}
	}()
	run(lcws.WS, func(ctx *lcws.Ctx) {
		HashDedup(ctx, []uint64{^uint64(0)})
	})
}

func TestHashDedupAgreesWithSortBased(t *testing.T) {
	run(lcws.HalfLCWS, func(ctx *lcws.Ctx) {
		g := rng.New(53)
		xs := make([]uint64, 30000)
		for i := range xs {
			xs[i] = g.Uint64() >> 1
		}
		hashed := HashDedup(ctx, xs)
		Sort(ctx, hashed)
		sorted := RemoveDuplicates(ctx, xs)
		if len(hashed) != len(sorted) {
			t.Fatalf("hash %d values, sort-based %d", len(hashed), len(sorted))
		}
		for i := range sorted {
			if hashed[i] != sorted[i] {
				t.Fatalf("mismatch at %d", i)
			}
		}
	})
}
