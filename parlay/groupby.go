package parlay

import (
	"cmp"

	"lcws"
)

// Group is one key with all its associated values, in input order.
type Group[K comparable, V any] struct {
	Key    K
	Values []V
}

// GroupByKey collects the values of equal keys (Parlay's group_by_key /
// semisort): the result contains one Group per distinct key, keys in
// ascending order, each group's values in their original input order.
func GroupByKey[K cmp.Ordered, V any](ctx *lcws.Ctx, keys []K, values []V) []Group[K, V] {
	if len(keys) != len(values) {
		panic("parlay: GroupByKey length mismatch")
	}
	n := len(keys)
	if n == 0 {
		return nil
	}
	// Stable sort of indices by key keeps each group's values in input
	// order.
	idx := Tabulate(ctx, n, func(i int) int32 { return int32(i) })
	SortFunc(ctx, idx, func(a, b int32) bool {
		if keys[a] != keys[b] {
			return keys[a] < keys[b]
		}
		return a < b
	})
	starts := Tabulate(ctx, n, func(i int) bool {
		return i == 0 || keys[idx[i]] != keys[idx[i-1]]
	})
	heads := PackIndex(ctx, starts)
	return Tabulate(ctx, len(heads), func(j int) Group[K, V] {
		end := n
		if j+1 < len(heads) {
			end = heads[j+1]
		}
		g := Group[K, V]{Key: keys[idx[heads[j]]], Values: make([]V, end-heads[j])}
		for i := heads[j]; i < end; i++ {
			g.Values[i-heads[j]] = values[idx[i]]
		}
		return g
	})
}

// CountByKey returns each distinct key with its multiplicity, keys
// ascending (Parlay's count_by_key).
func CountByKey[K cmp.Ordered](ctx *lcws.Ctx, keys []K) ([]K, []int) {
	n := len(keys)
	if n == 0 {
		return nil, nil
	}
	sorted := make([]K, n)
	copy(sorted, keys)
	Sort(ctx, sorted)
	starts := Tabulate(ctx, n, func(i int) bool {
		return i == 0 || sorted[i] != sorted[i-1]
	})
	heads := PackIndex(ctx, starts)
	uniq := Tabulate(ctx, len(heads), func(j int) K { return sorted[heads[j]] })
	counts := Tabulate(ctx, len(heads), func(j int) int {
		end := n
		if j+1 < len(heads) {
			end = heads[j+1]
		}
		return end - heads[j]
	})
	return uniq, counts
}

// MinIndex returns the index of the smallest element (lowest index on
// ties), or -1 for an empty slice.
func MinIndex[T cmp.Ordered](ctx *lcws.Ctx, xs []T) int {
	return bestIndex(ctx, xs, func(a, b T) bool { return a < b })
}

// MaxIndex returns the index of the largest element (lowest index on
// ties), or -1 for an empty slice.
func MaxIndex[T cmp.Ordered](ctx *lcws.Ctx, xs []T) int {
	return bestIndex(ctx, xs, func(a, b T) bool { return a > b })
}

// bestIndex reduces to the lowest index whose element "beats" all others
// under the strict preference relation better.
func bestIndex[T any](ctx *lcws.Ctx, xs []T, better func(a, b T) bool) int {
	if len(xs) == 0 {
		return -1
	}
	idx := Iota(ctx, len(xs))
	return Reduce(ctx, idx[1:], 0, func(a, b int) int {
		switch {
		case better(xs[b], xs[a]):
			return b
		case better(xs[a], xs[b]):
			return a
		case b < a:
			return b
		default:
			return a
		}
	})
}

// FindIf returns the lowest index whose element satisfies pred, or -1.
// It searches geometrically growing prefixes in parallel, so a match near
// the front costs far less than a full scan (Parlay's find_if).
func FindIf[T any](ctx *lcws.Ctx, xs []T, pred func(T) bool) int {
	n := len(xs)
	blockLen := 1024
	for lo := 0; lo < n; {
		hi := lo + blockLen
		if hi > n {
			hi = n
		}
		// Scan [lo, hi) in parallel sub-blocks and reduce to the lowest
		// matching index.
		found := blockCounts(ctx, hi-lo, 256, func(a, b int) int {
			for i := a; i < b; i++ {
				if pred(xs[lo+i]) {
					return lo + i
				}
			}
			return -1
		})
		best := -1
		for _, f := range found {
			if f >= 0 && (best == -1 || f < best) {
				best = f
			}
		}
		if best >= 0 {
			return best
		}
		lo = hi
		blockLen *= 2
	}
	return -1
}

// Unique returns xs with adjacent duplicates removed (Parlay's unique):
// on sorted input this yields the distinct values.
func Unique[T comparable](ctx *lcws.Ctx, xs []T) []T {
	if len(xs) == 0 {
		return nil
	}
	keep := Tabulate(ctx, len(xs), func(i int) bool {
		return i == 0 || xs[i] != xs[i-1]
	})
	return Pack(ctx, xs, keep)
}

// Merge merges two sorted slices into a new sorted slice using the
// parallel merge underlying SortFunc.
func Merge[T cmp.Ordered](ctx *lcws.Ctx, a, b []T) []T {
	out := make([]T, len(a)+len(b))
	parallelMerge(ctx, a, b, out, func(x, y T) bool { return x < y })
	return out
}

// MergeFunc is Merge with an explicit ordering; the merge is stable
// (ties take from a first).
func MergeFunc[T any](ctx *lcws.Ctx, a, b []T, less func(x, y T) bool) []T {
	out := make([]T, len(a)+len(b))
	parallelMerge(ctx, a, b, out, less)
	return out
}
