package parlay

import (
	"cmp"

	"lcws"
)

// sortGrain is the leaf size below which the parallel sorts fall back to a
// sequential sort.
const sortGrain = 2048

// mergeGrain is the range size below which parallel merges run
// sequentially.
const mergeGrain = 4096

// Sort sorts xs in place (ascending) with a parallel stable merge sort.
func Sort[T cmp.Ordered](ctx *lcws.Ctx, xs []T) {
	SortFunc(ctx, xs, func(a, b T) bool { return a < b })
}

// SortFunc sorts xs in place with a parallel stable merge sort using less.
func SortFunc[T any](ctx *lcws.Ctx, xs []T, less func(a, b T) bool) {
	if len(xs) < 2 {
		return
	}
	buf := make([]T, len(xs))
	mergeSortRec(ctx, xs, buf, less, true)
}

// Sorted returns a sorted copy of xs.
func Sorted[T cmp.Ordered](ctx *lcws.Ctx, xs []T) []T {
	out := make([]T, len(xs))
	copy(out, xs)
	Sort(ctx, out)
	return out
}

// mergeSortRec sorts src, leaving the result in src when toSrc is true and
// in dst otherwise. src and dst are same-length parallel views.
func mergeSortRec[T any](ctx *lcws.Ctx, src, dst []T, less func(a, b T) bool, toSrc bool) {
	n := len(src)
	if n <= sortGrain {
		sortLeaf(src, less)
		if !toSrc {
			copy(dst, src)
		}
		ctx.Poll()
		return
	}
	mid := n / 2
	lcws.Fork2(ctx,
		func(ctx *lcws.Ctx) { mergeSortRec(ctx, src[:mid], dst[:mid], less, !toSrc) },
		func(ctx *lcws.Ctx) { mergeSortRec(ctx, src[mid:], dst[mid:], less, !toSrc) },
	)
	// The sorted halves are in the *other* buffer; merge them back.
	if toSrc {
		parallelMerge(ctx, dst[:mid], dst[mid:], src, less)
	} else {
		parallelMerge(ctx, src[:mid], src[mid:], dst, less)
	}
}

// parallelMerge merges sorted a and b into out (len(out) == len(a)+len(b))
// by recursive binary splitting: the median of the larger input is located
// in the other input with a binary search, and the two halves merge in
// parallel. The merge is stable: ties take from a first.
func parallelMerge[T any](ctx *lcws.Ctx, a, b, out []T, less func(x, y T) bool) {
	if len(a)+len(b) <= mergeGrain {
		seqMerge(a, b, out, less)
		ctx.Poll()
		return
	}
	if len(a) < len(b) {
		// Keep a as the larger side; stability requires flipping the
		// tie-breaking direction when we swap the inputs.
		mid := len(b) / 2
		pivot := b[mid]
		// Elements of a strictly less-or-equal... for stability, a's
		// elements equal to pivot must come before b[mid], so split a at
		// upperBound(a, pivot): first index with pivot < a[i].
		split := upperBound(a, pivot, less)
		lcws.Fork2(ctx,
			func(ctx *lcws.Ctx) { parallelMerge(ctx, a[:split], b[:mid], out[:split+mid], less) },
			func(ctx *lcws.Ctx) { parallelMerge(ctx, a[split:], b[mid:], out[split+mid:], less) },
		)
		return
	}
	mid := len(a) / 2
	pivot := a[mid]
	// b's elements equal to pivot come after a[mid]: split b at
	// lowerBound(b, pivot): first index with !(b[i] < pivot).
	split := lowerBound(b, pivot, less)
	lcws.Fork2(ctx,
		func(ctx *lcws.Ctx) { parallelMerge(ctx, a[:mid], b[:split], out[:mid+split], less) },
		func(ctx *lcws.Ctx) { parallelMerge(ctx, a[mid:], b[split:], out[mid+split:], less) },
	)
}

// seqMerge is the sequential stable merge kernel.
func seqMerge[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// lowerBound returns the first index i with !(xs[i] < key).
func lowerBound[T any](xs []T, key T, less func(a, b T) bool) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(xs[mid], key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index i with key < xs[i].
func upperBound[T any](xs []T, key T, less func(a, b T) bool) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(key, xs[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
